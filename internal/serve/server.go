package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
)

// Options configures a Server.
type Options struct {
	// Pool is the number of concurrently running jobs (default
	// GOMAXPROCS).
	Pool int
	// QueueDepth bounds the admitted-but-waiting queue; a submit that
	// finds it full is rejected with 429 + Retry-After (default
	// 4*Pool).
	QueueDepth int
	// PerClient caps one client's queued+running jobs (identified by
	// the X-Client-ID header, falling back to the remote address).
	// Default 8; negative disables the cap.
	PerClient int
	// Limits caps every job's budget fields; zero fields take
	// DefaultLimits.
	Limits Budget
	// Defaults fill a request's unset budget fields; zero fields take
	// DefaultBudget.
	Defaults Budget
	// DefaultTargets fills the target set of requests that omit the
	// targets field (hgserve's -backend/-device/-target flags). Nil
	// keeps such requests on the legacy single-default-target path.
	DefaultTargets []hls.Target
	// Cache, when non-nil, is shared by every job (typically sharded —
	// see evalcache.Options.Shards — since jobs run concurrently).
	Cache *evalcache.Cache
	// Metrics receives serve.* counters plus every job's event-derived
	// metrics; exported at GET /metrics. Nil allocates a private
	// registry.
	Metrics *obs.Registry
	// QuarantineDir receives minimized reproducers of deterministic
	// stage failures (guard.Options.QuarantineDir); "" disables.
	QuarantineDir string
	// Injector plants deterministic faults in every job's guarded
	// stages (internal/chaos); nil disables injection.
	Injector guard.Injector
	// Warn receives one human-readable line per distinct contained
	// failure and cache degrade; nil discards.
	Warn func(string)
	// MaxBodyBytes bounds the request body (default 4 MiB).
	MaxBodyBytes int64
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobs bounds the retained job records; the oldest terminal
	// jobs are evicted past it (default 4096).
	MaxJobs int
	// Logger receives structured per-job records (admission, state
	// transitions, phase boundaries, persistence) with each job's
	// correlation id attached. Nil discards.
	Logger *slog.Logger
	// TraceDir, when set, retains every terminal job's deterministic
	// event trace as <id>.jsonl plus an <id>.meta.json operational
	// sidecar — the feed hgstat ingests. "" disables retention.
	TraceDir string
	// QueueWaitSLO is the queue-wait objective: a job that waits longer
	// before starting counts into serve.slo.queue_wait_violations.
	// Zero disables the counter.
	QueueWaitSLO time.Duration
}

// AdmissionError is a rejected submission: the server is over one of
// its admission bounds. HTTP maps it to status 429 with a Retry-After
// header.
type AdmissionError struct {
	Reason     string        // "queue_full" or "client_cap"
	RetryAfter time.Duration // suggested client backoff
}

func (e *AdmissionError) Error() string {
	return "serve: admission rejected: " + e.Reason
}

// Server runs jobs on a bounded pool behind admission control. Create
// with New, expose with Handler, stop with Close.
type Server struct {
	opts     Options
	limits   Budget
	defaults Budget
	metrics  *obs.Registry
	started  time.Time

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *Job

	// gate, when non-nil, makes workers wait for one token per job
	// before executing — a test hook for deterministic backpressure.
	gate chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	inflight map[string]int
	nextID   int64
	closed   bool
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	s := newServer(opts)
	s.start()
	return s
}

// newServer builds the server without starting workers, so tests can
// install the gate hook race-free before the pool runs.
func newServer(opts Options) *Server {
	if opts.Pool <= 0 {
		opts.Pool = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.Pool
	}
	if opts.PerClient == 0 {
		opts.PerClient = 8
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s := &Server{
		opts:     opts,
		limits:   opts.Limits.fill(DefaultLimits()),
		defaults: opts.Defaults.fill(DefaultBudget()).clampTo(opts.Limits.fill(DefaultLimits())),
		metrics:  opts.Metrics,
		started:  time.Now(),
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]int{},
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	return s
}

// start launches the worker pool.
func (s *Server) start() {
	for i := 0; i < s.opts.Pool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops admitting, cancels every live job, and waits for the
// pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Metrics exposes the server's registry (for embedding callers).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Submit validates, admits, and enqueues a job for client. The
// returned job is already visible to Get. A full queue or an
// over-cap client yields an *AdmissionError.
func (s *Server) Submit(req Request, client string) (*Job, error) {
	return s.SubmitWithCorrelation(req, client, "")
}

// SubmitWithCorrelation is Submit with a caller-supplied correlation
// id (e.g. the X-Correlation-ID header) threaded through every log
// record, the job status, and the retained trace sidecar. An empty id
// defaults to the job's own id.
func (s *Server) SubmitWithCorrelation(req Request, client, corr string) (*Job, error) {
	if !ValidKind(req.Kind) {
		return nil, fmt.Errorf("serve: unknown job kind %q (want one of %v)", req.Kind, Kinds())
	}
	if req.Source == "" {
		return nil, fmt.Errorf("serve: empty source")
	}
	if req.Kernel == "" {
		return nil, fmt.Errorf("serve: no kernel specified")
	}
	targets, terr := hls.ParseTargets(req.Targets)
	if terr != nil {
		return nil, fmt.Errorf("serve: %w", terr)
	}
	if len(targets) == 0 {
		targets = s.opts.DefaultTargets
	}
	eff := req.Budget.fill(s.defaults).clampTo(s.limits)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server closed")
	}
	if s.opts.PerClient > 0 && s.inflight[client] >= s.opts.PerClient {
		s.metrics.Add("serve.jobs.rejected.client_cap", 1)
		s.metrics.Add("serve.slo.overload_rejections", 1)
		s.logger().Warn("admission rejected", "reason", "client_cap",
			"client", client, "correlation_id", corr)
		return nil, &AdmissionError{Reason: "client_cap", RetryAfter: s.opts.RetryAfter}
	}
	s.nextID++
	j := &Job{
		id:      fmt.Sprintf("j-%06d", s.nextID),
		kind:    req.Kind,
		client:  client,
		corr:    corr,
		budget:  eff,
		req:     req,
		targets: targets,
		events:  newEventLog(),
		state:   StateQueued,
		created: time.Now(),
	}
	if j.corr == "" {
		j.corr = j.id
	}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	select {
	case s.queue <- j:
	default:
		s.metrics.Add("serve.jobs.rejected.queue_full", 1)
		s.metrics.Add("serve.slo.overload_rejections", 1)
		s.logger().Warn("admission rejected", "reason", "queue_full",
			"client", client, "correlation_id", corr)
		return nil, &AdmissionError{Reason: "queue_full", RetryAfter: s.opts.RetryAfter}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.inflight[client]++
	s.metrics.Add("serve.jobs.submitted", 1)
	s.metrics.Add("serve.queue.depth", 1)
	s.evictLocked()
	s.jobLogger(j).Info("job admitted", "queue_depth", len(s.queue))
	return j, nil
}

// evictLocked drops the oldest terminal jobs past the retention bound.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.opts.MaxJobs && j != nil && j.Status().State.Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get returns a job by id (nil when unknown or evicted).
func (s *Server) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel requests cancellation of a job. A queued job turns terminal
// immediately; a running job is cancelled at its next commit point and
// keeps its best-so-far partial result. Terminal jobs are untouched.
// Returns false when the id is unknown.
func (s *Server) Cancel(id string) bool {
	j := s.Get(id)
	if j == nil {
		return false
	}
	j.cancel()
	j.mu.Lock()
	wasQueued := j.state == StateQueued
	if wasQueued {
		j.state = StateCancelled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	if wasQueued {
		j.events.finish()
		s.finishAccounting(j, StateCancelled)
	}
	return true
}

// finishAccounting releases the client's in-flight slot and counts the
// terminal transition. Called exactly once per job.
func (s *Server) finishAccounting(j *Job, st State) {
	s.mu.Lock()
	if s.inflight[j.client] > 0 {
		s.inflight[j.client]--
		if s.inflight[j.client] == 0 {
			delete(s.inflight, j.client)
		}
	}
	s.mu.Unlock()
	s.metrics.Add("serve.jobs."+string(st), 1)
}

// worker drains the queue until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.metrics.Add("serve.queue.depth", -1)
			if s.gate != nil {
				select {
				case <-s.gate:
				case <-s.baseCtx.Done():
					return
				}
			}
			s.runJob(j)
		}
	}
}

// runJob executes one dequeued job through its terminal transition.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting; accounting already done.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.created)
	j.mu.Unlock()
	s.metrics.Add("serve.jobs.running", 1)
	s.metrics.Observe("serve.queue_wait_ms", float64(queueWait.Milliseconds()))
	if s.opts.QueueWaitSLO > 0 && queueWait > s.opts.QueueWaitSLO {
		s.metrics.Add("serve.slo.queue_wait_violations", 1)
		s.jobLogger(j).Warn("queue wait SLO violated",
			"queue_wait_ms", queueWait.Milliseconds(),
			"slo_ms", s.opts.QueueWaitSLO.Milliseconds())
	}
	s.jobLogger(j).Info("job running", "queue_wait_ms", queueWait.Milliseconds())

	// Cache stats are cumulative over the shared cache; the before/after
	// difference attributes activity to this job. With concurrent jobs on
	// one cache the attribution is approximate — deltas overlap — but it
	// is exact in single-job flows and always sums correctly fleet-wide.
	cacheBefore := s.opts.Cache.Stats()
	res, jerr := s.execute(j)
	cacheDelta := s.opts.Cache.Stats().Sub(cacheBefore)

	st := StateDone
	var msg string
	var failure *guard.StageFailure
	switch {
	case jerr != nil && j.ctx.Err() != nil && res != nil:
		// Cancelled mid-run with a best-so-far outcome.
		st = StateCancelled
		res.Partial = true
	case jerr != nil:
		st = StateFailed
		msg = jerr.Error()
		failure = asFailure(jerr)
	}

	j.mu.Lock()
	j.state = st
	j.result = res
	j.errMsg = msg
	j.failure = failure
	j.finished = time.Now()
	wall := j.finished.Sub(j.started)
	j.mu.Unlock()
	j.events.finish()
	j.cancel()
	s.metrics.Add("serve.jobs.running", -1)
	s.metrics.Observe("serve.job_wall_ms."+string(j.kind), float64(wall.Milliseconds()))
	s.finishAccounting(j, st)
	log := s.jobLogger(j)
	if msg != "" {
		log.Error("job terminal", "state", string(st), "wall_ms", wall.Milliseconds(), "error", msg)
	} else {
		log.Info("job terminal", "state", string(st), "wall_ms", wall.Milliseconds())
	}
	s.persistTrace(j, st, queueWait, wall, cacheDelta)
}

// asFailure digs a typed *guard.StageFailure out of an error chain
// (entry points wrap containments, e.g. "heterogen: parse: guard: …").
func asFailure(err error) *guard.StageFailure {
	for e := err; e != nil; {
		if f := guard.AsFailure(e); f != nil {
			return f
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		e = u.Unwrap()
	}
	return nil
}

// execute dispatches one job to its pipeline entry point. A non-nil
// *Result alongside a non-nil error is a cancelled job's partial
// outcome. A panic escaping the glue between guarded stages is
// contained here as a StageEval failure — one bad job never takes the
// daemon down.
func (s *Server) execute(j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, guard.PanicFailure(guard.StageEval, r)
		}
	}()
	g := guard.New(guard.Options{
		StageDeadline: time.Duration(j.budget.StageDeadlineMS) * time.Millisecond,
		InterpSteps:   j.budget.InterpSteps,
		QuarantineDir: s.opts.QuarantineDir,
		Injector:      s.opts.Injector,
		Metrics:       s.metrics,
		Warn:          s.opts.Warn,
	})
	sink := obs.Multi(j.events, s.metrics)
	if s.opts.Logger != nil {
		// The log tap rides beside the event log, never inside it: trace
		// bytes stay byte-identical with logging on or off.
		sink = obs.Multi(sink, phaseLogger{log: s.jobLogger(j)})
	}
	if len(j.targets) > 0 {
		// Targeted jobs stamp every event with the canonical target set —
		// a configuration edge, so untargeted jobs' traces are unchanged.
		sink = obs.TagTarget(sink, hls.TargetSetString(j.targets))
	}
	copts := core.Options{
		Kernel:   j.req.Kernel,
		HostMain: j.req.Host,
		Workers:  j.budget.Workers,
		Targets:  j.targets,
		Obs:      sink,
		Cache:    s.opts.Cache,
		Guard:    g,
	}
	copts.Fuzz = fuzz.DefaultOptions()
	copts.Fuzz.MaxExecs = j.budget.FuzzExecs
	if j.req.Seed != 0 {
		copts.Fuzz.Seed = j.req.Seed
	}
	copts.Repair = repair.DefaultOptions()
	copts.Repair.MaxIterations = j.budget.MaxIterations
	if j.req.Seed != 0 {
		copts.Repair.Seed = j.req.Seed
	}

	switch j.kind {
	case KindTranspile:
		r, rerr := core.RunContext(j.ctx, j.req.Source, copts)
		if rerr != nil {
			if j.ctx.Err() != nil && r.Final != nil {
				return &Result{Transpile: transpileResult(r)}, rerr
			}
			return nil, rerr
		}
		return &Result{Transpile: transpileResult(r)}, nil
	case KindCheck:
		if len(j.targets) > 0 {
			reps, cerr := core.CheckSet(j.req.Source, copts)
			if cerr != nil {
				return nil, cerr
			}
			return &Result{Check: checkSetResult(reps)}, nil
		}
		rep, cerr := core.CheckWith(j.req.Source, copts)
		if cerr != nil {
			return nil, cerr
		}
		return &Result{Check: checkResult(rep)}, nil
	case KindRepair:
		rr, rerr := core.RepairStageContext(j.ctx, j.req.Source, copts)
		if rerr != nil {
			if j.ctx.Err() != nil && rr.Unit != nil {
				return &Result{Repair: repairResult(rr, cast.Print(rr.Unit))}, rerr
			}
			return nil, rerr
		}
		return &Result{Repair: repairResult(rr, cast.Print(rr.Unit))}, nil
	case KindFuzz:
		u, perr := guard.Do(g, guard.Invocation{Stage: guard.StageParse, Key: j.req.Source},
			func(*cast.Unit) (*cast.Unit, error) {
				return cparser.Parse(j.req.Source)
			})
		if perr != nil {
			return nil, fmt.Errorf("heterogen: parse: %w", perr)
		}
		fopts := copts.Fuzz
		fopts.HostMain = j.req.Host
		fopts.Obs = sink
		fopts.Cache = s.opts.Cache
		fopts.Guard = g
		fopts.MaxStepsPerExec = j.budget.InterpSteps
		camp, ferr := fuzz.RunContext(j.ctx, u, j.req.Kernel, fopts)
		if ferr != nil {
			return nil, ferr
		}
		if cerr := j.ctx.Err(); cerr != nil {
			return &Result{Fuzz: fuzzResult(camp)}, fmt.Errorf("heterogen: cancelled during fuzz: %w", cerr)
		}
		return &Result{Fuzz: fuzzResult(camp)}, nil
	}
	return nil, fmt.Errorf("serve: unhandled kind %q", j.kind)
}

// Handler returns the HTTP API (see http.go for the routes).
func (s *Server) Handler() http.Handler {
	return s.routes()
}
