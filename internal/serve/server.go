package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/crashpoint"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
)

// Options configures a Server.
type Options struct {
	// Pool is the number of concurrently running jobs (default
	// GOMAXPROCS).
	Pool int
	// QueueDepth bounds the admitted-but-waiting queue; a submit that
	// finds it full is rejected with 429 + Retry-After (default
	// 4*Pool).
	QueueDepth int
	// PerClient caps one client's queued+running jobs (identified by
	// the X-Client-ID header, falling back to the remote address).
	// Default 8; negative disables the cap.
	PerClient int
	// Limits caps every job's budget fields; zero fields take
	// DefaultLimits.
	Limits Budget
	// Defaults fill a request's unset budget fields; zero fields take
	// DefaultBudget.
	Defaults Budget
	// DefaultTargets fills the target set of requests that omit the
	// targets field (hgserve's -backend/-device/-target flags). Nil
	// keeps such requests on the legacy single-default-target path.
	DefaultTargets []hls.Target
	// Cache, when non-nil, is shared by every job (typically sharded —
	// see evalcache.Options.Shards — since jobs run concurrently).
	Cache *evalcache.Cache
	// Metrics receives serve.* counters plus every job's event-derived
	// metrics; exported at GET /metrics. Nil allocates a private
	// registry.
	Metrics *obs.Registry
	// QuarantineDir receives minimized reproducers of deterministic
	// stage failures (guard.Options.QuarantineDir); "" disables.
	QuarantineDir string
	// Injector plants deterministic faults in every job's guarded
	// stages (internal/chaos); nil disables injection.
	Injector guard.Injector
	// Warn receives one human-readable line per distinct contained
	// failure and cache degrade; nil discards.
	Warn func(string)
	// MaxBodyBytes bounds the request body (default 4 MiB).
	MaxBodyBytes int64
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobs bounds the retained job records; the oldest terminal
	// jobs are evicted past it (default 4096).
	MaxJobs int
	// Logger receives structured per-job records (admission, state
	// transitions, phase boundaries, persistence) with each job's
	// correlation id attached. Nil discards.
	Logger *slog.Logger
	// TraceDir, when set, retains every terminal job's deterministic
	// event trace as <id>.jsonl plus an <id>.meta.json operational
	// sidecar — the feed hgstat ingests. "" disables retention.
	TraceDir string
	// QueueWaitSLO is the queue-wait objective: a job that waits longer
	// before starting counts into serve.slo.queue_wait_violations.
	// Zero disables the counter.
	QueueWaitSLO time.Duration
	// evalDelay (test hook, package-internal) rides into every repair
	// job's repair.Options.EvalDelay so durability tests can pace a
	// search in real time and interrupt it deterministically mid-run.
	// It never changes results or traces (EvalDelay is excluded from
	// the determinism envelope and the checkpoint key).
	evalDelay time.Duration
	// StateDir, when set, makes the server crash-recoverable: every job
	// state transition is appended (fsynced) to a write-ahead journal
	// under it before the transition is visible to clients, and repair
	// and transpile jobs checkpoint their search under
	// <state-dir>/checkpoints/<id>.ckpt. A restarted server replays the
	// journal: terminal jobs are re-reported, interrupted jobs are
	// re-enqueued and resume from their checkpoints with byte-identical
	// results and traces. "" disables durability (today's behavior).
	StateDir string
}

// AdmissionError is a rejected submission: the server is over one of
// its admission bounds or shutting down. HTTP maps it to status 429
// with a Retry-After header.
type AdmissionError struct {
	Reason     string        // "queue_full", "client_cap", or "draining"
	RetryAfter time.Duration // suggested client backoff
}

func (e *AdmissionError) Error() string {
	return "serve: admission rejected: " + e.Reason
}

// Server runs jobs on a bounded pool behind admission control. Create
// with New, expose with Handler, stop with Close.
type Server struct {
	opts     Options
	limits   Budget
	defaults Budget
	metrics  *obs.Registry
	started  time.Time

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *Job

	// journal is the write-ahead job log (nil without Options.StateDir).
	journal *journal
	// drainCh closes when a graceful drain starts: idle workers exit
	// and no further queued jobs are dequeued.
	drainCh chan struct{}

	// gate, when non-nil, makes workers wait for one token per job
	// before executing — a test hook for deterministic backpressure.
	gate chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	inflight map[string]int
	nextID   int64
	closed   bool
	draining bool
	ready    bool
}

// New builds a server and starts its worker pool. With
// Options.StateDir set, the state journal is replayed first: terminal
// jobs reappear as reportable history and interrupted ones are
// re-enqueued before the pool starts. Until replay completes the
// server reports not-ready (GET /readyz → 503).
func New(opts Options) *Server {
	s := newServer(opts)
	if opts.StateDir != "" {
		if err := s.recover(); err != nil {
			s.metrics.Add("serve.recovery.errors", 1)
			s.logger().Error("state recovery failed; running without durability",
				"state_dir", opts.StateDir, "error", err)
			if opts.Warn != nil {
				opts.Warn(fmt.Sprintf("serve: state recovery failed, durability disabled: %v", err))
			}
		}
	}
	s.start()
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
	return s
}

// newServer builds the server without starting workers, so tests can
// install the gate hook race-free before the pool runs.
func newServer(opts Options) *Server {
	if opts.Pool <= 0 {
		opts.Pool = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.Pool
	}
	if opts.PerClient == 0 {
		opts.PerClient = 8
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s := &Server{
		opts:     opts,
		limits:   opts.Limits.fill(DefaultLimits()),
		defaults: opts.Defaults.fill(DefaultBudget()).clampTo(opts.Limits.fill(DefaultLimits())),
		metrics:  opts.Metrics,
		started:  time.Now(),
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]int{},
		drainCh:  make(chan struct{}),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	return s
}

// recover replays the write-ahead journal under Options.StateDir.
func (s *Server) recover() error {
	dir := s.opts.StateDir
	if err := os.MkdirAll(filepath.Join(dir, "checkpoints"), 0o755); err != nil {
		return err
	}
	jn, entries, err := openJournal(dir)
	if err != nil {
		return err
	}
	s.journal = jn
	s.nextID = maxJobID(entries)

	var requeue []*Job
	for _, e := range entries {
		targets, terr := hls.ParseTargets(e.req.Targets)
		if terr != nil {
			// The target set validated at submission; a parse failure now
			// means the server's backend registry shrank. Surface it as a
			// failed job rather than dropping the id.
			e.state, e.errMsg = StateFailed, fmt.Sprintf("serve: recovery: %v", terr)
		}
		if len(targets) == 0 {
			targets = s.opts.DefaultTargets
		}
		j := &Job{
			id:      e.id,
			kind:    e.req.Kind,
			client:  e.client,
			corr:    e.corr,
			budget:  e.req.Budget.fill(s.defaults).clampTo(s.limits),
			req:     e.req,
			targets: targets,
			events:  newEventLog(),
			created: time.UnixMilli(e.acceptedMS),
			resumed: true,
		}
		if j.corr == "" {
			j.corr = j.id
		}
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
		if e.state.Terminal() {
			j.state = e.state
			j.result = e.result
			j.errMsg = e.errMsg
			j.failure = e.failure
			j.finished = time.UnixMilli(e.lastMS)
			j.events.finish()
			j.cancel()
			s.metrics.Add("serve.recovery.terminal_reloaded", 1)
		} else {
			// accepted / queued / running / checkpointed: run (again).
			// Checkpointed searches resume from <id>.ckpt byte-identically.
			j.state = StateQueued
			requeue = append(requeue, j)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}

	// The restored backlog may exceed the configured queue depth; size
	// the channel to hold all of it (workers have not started yet).
	if len(requeue) > cap(s.queue) {
		s.queue = make(chan *Job, len(requeue)+s.opts.QueueDepth)
	}
	for _, j := range requeue {
		s.queue <- j
		s.inflight[j.client]++
		s.metrics.Add("serve.queue.depth", 1)
		s.metrics.Add("serve.recovery.jobs_requeued", 1)
		s.jobLogger(j).Info("job requeued from journal")
	}
	if n := len(entries); n > 0 {
		s.logger().Info("journal replayed",
			"jobs", n, "requeued", len(requeue), "state_dir", dir)
	}
	return nil
}

// checkpointPath is the per-job repair checkpoint file ("" without a
// state dir).
func (s *Server) checkpointPath(j *Job) string {
	if s.opts.StateDir == "" {
		return ""
	}
	return filepath.Join(s.opts.StateDir, "checkpoints", j.id+".ckpt")
}

// start launches the worker pool.
func (s *Server) start() {
	for i := 0; i < s.opts.Pool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops admitting, cancels every live job, and waits for the
// pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	s.journal.close()
}

// Drain gracefully quiesces the server for shutdown:
//
//  1. Admission stops — new submissions get 429 "draining" and
//     GET /readyz turns 503 — and workers stop dequeuing, so queued
//     jobs stay journaled "accepted" for the next process to run.
//  2. Running jobs get up to timeout to finish normally (their
//     terminal records journal as usual).
//  3. Jobs still running at the deadline are stopped at their next
//     commit point and journaled "checkpointed": a restart re-enqueues
//     them and their searches resume from checkpoint files with
//     byte-identical results.
//  4. The journal is fsynced and closed.
//
// Drain is idempotent; it does not cancel the server's base context
// (call Close afterwards to release the job records). Returns the
// number of jobs that were checkpoint-stopped.
func (s *Server) Drain(timeout time.Duration) int {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		close(s.drainCh)
	}
	s.logger().Info("drain started", "timeout", timeout.String())

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	stopped := 0
	select {
	case <-done:
	case <-time.After(timeout):
		// Deadline: checkpoint-stop whatever is still running. The
		// cancellation lands at the search's next commit point; the
		// outcome log already holds everything committed before it.
		s.mu.Lock()
		var running []*Job
		for _, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				continue
			}
			j.mu.Lock()
			if j.state == StateRunning {
				j.drainStop = true
				running = append(running, j)
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		for _, j := range running {
			s.jobLogger(j).Info("drain checkpoint-stopping job")
			j.cancel()
		}
		stopped = len(running)
		<-done
	}
	crashpoint.Here("serve.drain")
	s.journal.close()
	s.metrics.Add("serve.drain.checkpoint_stopped", int64(stopped))
	s.logger().Info("drain complete", "checkpoint_stopped", stopped)
	return stopped
}

// Metrics exposes the server's registry (for embedding callers).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Submit validates, admits, and enqueues a job for client. The
// returned job is already visible to Get. A full queue or an
// over-cap client yields an *AdmissionError.
func (s *Server) Submit(req Request, client string) (*Job, error) {
	return s.SubmitWithCorrelation(req, client, "")
}

// SubmitWithCorrelation is Submit with a caller-supplied correlation
// id (e.g. the X-Correlation-ID header) threaded through every log
// record, the job status, and the retained trace sidecar. An empty id
// defaults to the job's own id.
func (s *Server) SubmitWithCorrelation(req Request, client, corr string) (*Job, error) {
	if !ValidKind(req.Kind) {
		return nil, fmt.Errorf("serve: unknown job kind %q (want one of %v)", req.Kind, Kinds())
	}
	if req.Source == "" {
		return nil, fmt.Errorf("serve: empty source")
	}
	if req.Kernel == "" {
		return nil, fmt.Errorf("serve: no kernel specified")
	}
	targets, terr := hls.ParseTargets(req.Targets)
	if terr != nil {
		return nil, fmt.Errorf("serve: %w", terr)
	}
	if len(targets) == 0 {
		targets = s.opts.DefaultTargets
	}
	eff := req.Budget.fill(s.defaults).clampTo(s.limits)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server closed")
	}
	if s.draining {
		s.metrics.Add("serve.jobs.rejected.draining", 1)
		s.logger().Warn("admission rejected", "reason", "draining",
			"client", client, "correlation_id", corr)
		return nil, &AdmissionError{Reason: "draining", RetryAfter: s.opts.RetryAfter}
	}
	if s.opts.PerClient > 0 && s.inflight[client] >= s.opts.PerClient {
		s.metrics.Add("serve.jobs.rejected.client_cap", 1)
		s.metrics.Add("serve.slo.overload_rejections", 1)
		s.logger().Warn("admission rejected", "reason", "client_cap",
			"client", client, "correlation_id", corr)
		return nil, &AdmissionError{Reason: "client_cap", RetryAfter: s.opts.RetryAfter}
	}
	s.nextID++
	j := &Job{
		id:      fmt.Sprintf("j-%06d", s.nextID),
		kind:    req.Kind,
		client:  client,
		corr:    corr,
		budget:  eff,
		req:     req,
		targets: targets,
		events:  newEventLog(),
		state:   StateQueued,
		created: time.Now(),
	}
	if j.corr == "" {
		j.corr = j.id
	}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	select {
	case s.queue <- j:
	default:
		s.metrics.Add("serve.jobs.rejected.queue_full", 1)
		s.metrics.Add("serve.slo.overload_rejections", 1)
		s.logger().Warn("admission rejected", "reason", "queue_full",
			"client", client, "correlation_id", corr)
		return nil, &AdmissionError{Reason: "queue_full", RetryAfter: s.opts.RetryAfter}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.inflight[client]++
	s.metrics.Add("serve.jobs.submitted", 1)
	s.metrics.Add("serve.queue.depth", 1)
	s.evictLocked()
	// The admission becomes durable before the caller sees it: the
	// journal line (request payload included) is fsynced here, so a
	// crash any time after the 202 cannot lose the job.
	s.journalAppend(journalRecord{ID: j.id, State: stateAccepted,
		Client: client, Corr: j.corr, Req: &req, MS: j.created.UnixMilli()})
	s.jobLogger(j).Info("job admitted", "queue_depth", len(s.queue))
	return j, nil
}

// journalAppend writes one record to the write-ahead journal (no-op
// without a state dir). Append failures degrade durability, never
// availability: they log and count, and the job proceeds in memory.
func (s *Server) journalAppend(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.metrics.Add("serve.journal.append_errors", 1)
		s.logger().Error("journal append failed", "job", rec.ID,
			"state", string(rec.State), "error", err)
		return
	}
	s.metrics.Add("serve.journal.appends", 1)
}

// evictLocked drops the oldest terminal jobs past the retention bound.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.opts.MaxJobs && j != nil && j.Status().State.Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get returns a job by id (nil when unknown or evicted).
func (s *Server) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel requests cancellation of a job. A queued job turns terminal
// immediately; a running job is cancelled at its next commit point and
// keeps its best-so-far partial result. Terminal jobs are untouched.
// Returns false when the id is unknown.
func (s *Server) Cancel(id string) bool {
	j := s.Get(id)
	if j == nil {
		return false
	}
	j.mu.Lock()
	// userCancelled distinguishes an explicit DELETE from a drain stop:
	// a drain journals "checkpointed" (resumable), a user cancellation
	// journals "cancelled" (terminal) — the user's intent wins the race.
	j.userCancelled = true
	wasQueued := j.state == StateQueued
	if wasQueued {
		j.state = StateCancelled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	if wasQueued {
		// A second DELETE finds the job already terminal (wasQueued
		// false), so the journal line and accounting stay exactly-once.
		s.journalAppend(record(j, StateCancelled))
		j.events.finish()
		s.finishAccounting(j, StateCancelled)
		s.removeCheckpoint(j)
	}
	return true
}

// removeCheckpoint deletes a terminal job's repair checkpoint file —
// nothing will ever resume it.
func (s *Server) removeCheckpoint(j *Job) {
	if p := s.checkpointPath(j); p != "" {
		os.Remove(p)
	}
}

// finishAccounting releases the client's in-flight slot and counts the
// terminal transition. Called exactly once per job.
func (s *Server) finishAccounting(j *Job, st State) {
	s.mu.Lock()
	if s.inflight[j.client] > 0 {
		s.inflight[j.client]--
		if s.inflight[j.client] == 0 {
			delete(s.inflight, j.client)
		}
	}
	s.mu.Unlock()
	s.metrics.Add("serve.jobs."+string(st), 1)
}

// worker drains the queue until the server closes or drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.drainCh:
			return
		case j := <-s.queue:
			// The select picks randomly among ready cases, so re-check:
			// once a drain starts no queued job may begin running. The
			// dequeued job stays "accepted" in the journal and runs after
			// restart; its in-memory state stays queued until shutdown.
			if s.isDraining() {
				return
			}
			s.metrics.Add("serve.queue.depth", -1)
			if s.gate != nil {
				select {
				case <-s.gate:
				case <-s.baseCtx.Done():
					return
				case <-s.drainCh:
					return
				}
			}
			s.runJob(j)
		}
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// runJob executes one dequeued job through its terminal transition.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting; accounting already done.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.created)
	j.mu.Unlock()
	s.journalAppend(record(j, StateRunning))
	s.metrics.Add("serve.jobs.running", 1)
	s.metrics.Observe("serve.queue_wait_ms", float64(queueWait.Milliseconds()))
	if s.opts.QueueWaitSLO > 0 && queueWait > s.opts.QueueWaitSLO {
		s.metrics.Add("serve.slo.queue_wait_violations", 1)
		s.jobLogger(j).Warn("queue wait SLO violated",
			"queue_wait_ms", queueWait.Milliseconds(),
			"slo_ms", s.opts.QueueWaitSLO.Milliseconds())
	}
	s.jobLogger(j).Info("job running", "queue_wait_ms", queueWait.Milliseconds())

	// Cache stats are cumulative over the shared cache; the before/after
	// difference attributes activity to this job. With concurrent jobs on
	// one cache the attribution is approximate — deltas overlap — but it
	// is exact in single-job flows and always sums correctly fleet-wide.
	cacheBefore := s.opts.Cache.Stats()
	res, jerr := s.execute(j)
	cacheDelta := s.opts.Cache.Stats().Sub(cacheBefore)

	st := StateDone
	var msg string
	var failure *guard.StageFailure
	switch {
	case jerr != nil && j.ctx.Err() != nil && res != nil:
		// Cancelled mid-run with a best-so-far outcome.
		st = StateCancelled
		res.Partial = true
	case jerr != nil:
		st = StateFailed
		msg = jerr.Error()
		failure = asFailure(jerr)
	}

	j.mu.Lock()
	// A drain stop is not a cancellation: the journal keeps the job
	// resumable ("checkpointed") so a restart re-runs it from its
	// checkpoint, while the in-memory record for this process's clients
	// reads cancelled-with-partial. An explicit user DELETE that raced
	// the drain wins — the job stays terminal across the restart.
	drainStopped := j.drainStop && !j.userCancelled && j.ctx.Err() != nil && st != StateDone
	j.state = st
	j.result = res
	j.errMsg = msg
	j.failure = failure
	j.finished = time.Now()
	wall := j.finished.Sub(j.started)
	j.mu.Unlock()
	if drainStopped {
		s.journalAppend(record(j, stateCheckpointed))
	} else {
		rec := record(j, st)
		rec.Result, rec.Error, rec.Failure = res, msg, failure
		s.journalAppend(rec)
		s.removeCheckpoint(j)
	}
	j.events.finish()
	j.cancel()
	s.metrics.Add("serve.jobs.running", -1)
	s.metrics.Observe("serve.job_wall_ms."+string(j.kind), float64(wall.Milliseconds()))
	s.finishAccounting(j, st)
	log := s.jobLogger(j)
	if msg != "" {
		log.Error("job terminal", "state", string(st), "wall_ms", wall.Milliseconds(), "error", msg)
	} else {
		log.Info("job terminal", "state", string(st), "wall_ms", wall.Milliseconds())
	}
	s.persistTrace(j, st, queueWait, wall, cacheDelta)
}

// asFailure digs a typed *guard.StageFailure out of an error chain
// (entry points wrap containments, e.g. "heterogen: parse: guard: …").
func asFailure(err error) *guard.StageFailure {
	for e := err; e != nil; {
		if f := guard.AsFailure(e); f != nil {
			return f
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		e = u.Unwrap()
	}
	return nil
}

// execute dispatches one job to its pipeline entry point. A non-nil
// *Result alongside a non-nil error is a cancelled job's partial
// outcome. A panic escaping the glue between guarded stages is
// contained here as a StageEval failure — one bad job never takes the
// daemon down.
func (s *Server) execute(j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, guard.PanicFailure(guard.StageEval, r)
		}
	}()
	g := guard.New(guard.Options{
		StageDeadline: time.Duration(j.budget.StageDeadlineMS) * time.Millisecond,
		InterpSteps:   j.budget.InterpSteps,
		QuarantineDir: s.opts.QuarantineDir,
		Injector:      s.opts.Injector,
		Metrics:       s.metrics,
		Warn:          s.opts.Warn,
	})
	sink := obs.Multi(j.events, s.metrics)
	if s.opts.Logger != nil {
		// The log tap rides beside the event log, never inside it: trace
		// bytes stay byte-identical with logging on or off.
		sink = obs.Multi(sink, phaseLogger{log: s.jobLogger(j)})
	}
	if len(j.targets) > 0 {
		// Targeted jobs stamp every event with the canonical target set —
		// a configuration edge, so untargeted jobs' traces are unchanged.
		sink = obs.TagTarget(sink, hls.TargetSetString(j.targets))
	}
	copts := core.Options{
		Kernel:   j.req.Kernel,
		HostMain: j.req.Host,
		Workers:  j.budget.Workers,
		Targets:  j.targets,
		Obs:      sink,
		Cache:    s.opts.Cache,
		Guard:    g,
		// With a state dir, the repair search write-ahead-logs its
		// outcomes per job id: a drained or crashed job re-runs to a
		// byte-identical result and trace by replaying this file.
		RepairCheckpoint: s.checkpointPath(j),
	}
	copts.Fuzz = fuzz.DefaultOptions()
	copts.Fuzz.MaxExecs = j.budget.FuzzExecs
	if j.req.Seed != 0 {
		copts.Fuzz.Seed = j.req.Seed
	}
	copts.Repair = repair.DefaultOptions()
	copts.Repair.MaxIterations = j.budget.MaxIterations
	copts.Repair.EvalDelay = s.opts.evalDelay
	if j.req.Seed != 0 {
		copts.Repair.Seed = j.req.Seed
	}

	switch j.kind {
	case KindTranspile:
		r, rerr := core.RunContext(j.ctx, j.req.Source, copts)
		if rerr != nil {
			if j.ctx.Err() != nil && r.Final != nil {
				return &Result{Transpile: transpileResult(r)}, rerr
			}
			return nil, rerr
		}
		return &Result{Transpile: transpileResult(r)}, nil
	case KindCheck:
		if len(j.targets) > 0 {
			reps, cerr := core.CheckSet(j.req.Source, copts)
			if cerr != nil {
				return nil, cerr
			}
			return &Result{Check: checkSetResult(reps)}, nil
		}
		rep, cerr := core.CheckWith(j.req.Source, copts)
		if cerr != nil {
			return nil, cerr
		}
		return &Result{Check: checkResult(rep)}, nil
	case KindRepair:
		rr, rerr := core.RepairStageContext(j.ctx, j.req.Source, copts)
		if rerr != nil {
			if j.ctx.Err() != nil && rr.Unit != nil {
				return &Result{Repair: repairResult(rr, cast.Print(rr.Unit))}, rerr
			}
			return nil, rerr
		}
		return &Result{Repair: repairResult(rr, cast.Print(rr.Unit))}, nil
	case KindFuzz:
		u, perr := guard.Do(g, guard.Invocation{Stage: guard.StageParse, Key: j.req.Source},
			func(*cast.Unit) (*cast.Unit, error) {
				return cparser.Parse(j.req.Source)
			})
		if perr != nil {
			return nil, fmt.Errorf("heterogen: parse: %w", perr)
		}
		fopts := copts.Fuzz
		fopts.HostMain = j.req.Host
		fopts.Obs = sink
		fopts.Cache = s.opts.Cache
		fopts.Guard = g
		fopts.MaxStepsPerExec = j.budget.InterpSteps
		camp, ferr := fuzz.RunContext(j.ctx, u, j.req.Kernel, fopts)
		if ferr != nil {
			return nil, ferr
		}
		if cerr := j.ctx.Err(); cerr != nil {
			return &Result{Fuzz: fuzzResult(camp)}, fmt.Errorf("heterogen: cancelled during fuzz: %w", cerr)
		}
		return &Result{Fuzz: fuzzResult(camp)}, nil
	}
	return nil, fmt.Errorf("serve: unhandled kind %q", j.kind)
}

// Handler returns the HTTP API (see http.go for the routes).
func (s *Server) Handler() http.Handler {
	return s.routes()
}
