package serve

import (
	"bytes"
	"net/http"
	"testing"

	"github.com/hetero/heterogen/internal/hls"
)

// The targets half of the jobs API: requests carry raw target specs,
// the status echoes the canonical set, results grow per-target
// verdicts (and a Pareto set for repairs), the NDJSON stream is
// stamped with the target set, and an unresolvable spec is a 400 at
// submission — never a queued job that fails later.

func TestJobTargets(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})

	st, resp := postJob(t, ts, Request{
		Kind: KindRepair, Source: sub.Source, Kernel: sub.Kernel,
		Targets: []string{"zc706", "vivado_hls:xcvu9p"},
		Budget:  smallBudget(),
	}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	want := []string{"vivado_hls:zc706", "vivado_hls:xcvu9p"}
	if len(st.Targets) != 2 || st.Targets[0] != want[0] || st.Targets[1] != want[1] {
		t.Fatalf("status targets = %v, want canonical %v (order preserved)", st.Targets, want)
	}

	fin := awaitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	r := fin.Result.Repair
	if r == nil {
		t.Fatal("terminal repair job has no result")
	}
	if len(r.PerTarget) != 2 {
		t.Fatalf("result has %d per-target verdicts, want 2", len(r.PerTarget))
	}
	for i, v := range r.PerTarget {
		if v.Target != want[i] {
			t.Errorf("per_target[%d] = %q, want %q", i, v.Target, want[i])
		}
		if v.Compatible && v.LatencyMS <= 0 {
			t.Errorf("per_target[%d] compatible but has no latency", i)
		}
	}
	if len(r.Pareto) == 0 {
		t.Error("multi-target repair result has no Pareto set")
	}
	for _, pt := range r.Pareto {
		if pt.Source == "" || len(pt.PerTarget) != 2 {
			t.Fatalf("malformed Pareto point: %d verdicts, source %d bytes",
				len(pt.PerTarget), len(pt.Source))
		}
	}

	stamp := []byte(`"target":"vivado_hls:zc706+vivado_hls:xcvu9p"`)
	if !bytes.Contains(eventBody(t, ts, st.ID), stamp) {
		t.Errorf("NDJSON events missing the target-set stamp %s", stamp)
	}
}

// TestJobTargetsDefault: a daemon-wide default target set applies to
// requests that omit targets, and an explicit request overrides it.
func TestJobTargetsDefault(t *testing.T) {
	sub := subjectP2(t)
	defaults, err := hls.ParseTargets([]string{"vitis:aws_f1"})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Options{DefaultTargets: defaults})

	st, _ := postJob(t, ts, Request{
		Kind: KindRepair, Source: sub.Source, Kernel: sub.Kernel, Budget: smallBudget(),
	}, "")
	if len(st.Targets) != 1 || st.Targets[0] != "vitis:aws_f1" {
		t.Errorf("defaulted job targets = %v, want [vitis:aws_f1]", st.Targets)
	}

	st, _ = postJob(t, ts, Request{
		Kind: KindRepair, Source: sub.Source, Kernel: sub.Kernel,
		Targets: []string{"vivado_hls:zc706"}, Budget: smallBudget(),
	}, "")
	if len(st.Targets) != 1 || st.Targets[0] != "vivado_hls:zc706" {
		t.Errorf("explicit job targets = %v, want [vivado_hls:zc706]", st.Targets)
	}
}

// TestJobTargetsInvalid: unresolvable specs are rejected at submission
// with 400, for both unknown backends and unknown devices.
func TestJobTargetsInvalid(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})
	for _, spec := range []string{"sdaccel:pluto", "vivado_hls:nope", "::"} {
		_, resp := postJob(t, ts, Request{
			Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
			Targets: []string{spec}, Budget: smallBudget(),
		}, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("targets=[%q]: status %d, want 400", spec, resp.StatusCode)
		}
	}
}

// TestCheckJobTargets: a multi-target check job returns the per-target
// diagnostic sets with the aggregate verdict.
func TestCheckJobTargets(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})
	st, _ := postJob(t, ts, Request{
		Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
		Targets: []string{"vivado_hls:xcvu9p", "vitis:aws_f1"},
		Budget:  smallBudget(),
	}, "")
	fin := awaitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
	}
	r := fin.Result.Check
	if r == nil || len(r.PerTarget) != 2 {
		t.Fatalf("check result lacks per-target reports: %+v", r)
	}
	sum := 0
	for _, tc := range r.PerTarget {
		sum += tc.Errors
		if tc.OK != (tc.Errors == 0) {
			t.Errorf("%s: OK=%v with %d errors", tc.Target, tc.OK, tc.Errors)
		}
	}
	if r.Errors != sum {
		t.Errorf("aggregate errors %d != per-target sum %d", r.Errors, sum)
	}
	if r.OK != (sum == 0) {
		t.Errorf("aggregate OK=%v with %d total errors", r.OK, sum)
	}
}
