package serve

import "runtime"

// Budget bounds one job's resource consumption. Every field is
// optional in a request: a zero field takes the server's default, and
// no field can exceed the server's limit (see Options.Limits) — the
// effective, clamped budget is echoed back in the job status so a
// client can see what it actually got.
type Budget struct {
	// StageDeadlineMS bounds each guarded toolchain stage invocation's
	// real duration in milliseconds (guard.Options.StageDeadline).
	StageDeadlineMS int64 `json:"stage_deadline_ms,omitempty"`
	// InterpSteps bounds each kernel execution's interpreter steps
	// (guard.Options.InterpSteps).
	InterpSteps int64 `json:"interp_steps,omitempty"`
	// FuzzExecs bounds the test-generation campaign's executions
	// (fuzz.Options.MaxExecs) for transpile and fuzz jobs.
	FuzzExecs int `json:"fuzz_execs,omitempty"`
	// MaxIterations bounds the repair search's iterations
	// (repair.Options.MaxIterations) for transpile and repair jobs.
	MaxIterations int `json:"max_iterations,omitempty"`
	// Workers bounds the job's internal evaluation parallelism
	// (core.Options.Workers). Results are bit-identical for any value.
	Workers int `json:"workers,omitempty"`
}

// DefaultBudget is what a job gets when its request leaves a Budget
// field zero: deliberately modest, sized for interactive latency.
func DefaultBudget() Budget {
	return Budget{
		StageDeadlineMS: 10_000,
		InterpSteps:     2_000_000,
		FuzzExecs:       1_000,
		MaxIterations:   32,
		Workers:         1,
	}
}

// DefaultLimits is the server-side ceiling applied when Options.Limits
// leaves a field zero. A request asking beyond a limit is clamped, not
// rejected — the echoed budget tells the client what happened.
func DefaultLimits() Budget {
	return Budget{
		StageDeadlineMS: 60_000,
		InterpSteps:     50_000_000,
		FuzzExecs:       20_000,
		MaxIterations:   256,
		Workers:         maxInt(1, runtime.GOMAXPROCS(0)),
	}
}

// fill replaces zero fields of b with the corresponding field of def.
func (b Budget) fill(def Budget) Budget {
	if b.StageDeadlineMS <= 0 {
		b.StageDeadlineMS = def.StageDeadlineMS
	}
	if b.InterpSteps <= 0 {
		b.InterpSteps = def.InterpSteps
	}
	if b.FuzzExecs <= 0 {
		b.FuzzExecs = def.FuzzExecs
	}
	if b.MaxIterations <= 0 {
		b.MaxIterations = def.MaxIterations
	}
	if b.Workers <= 0 {
		b.Workers = def.Workers
	}
	return b
}

// clampTo caps every field of b at the corresponding limit (zero limit
// fields do not constrain).
func (b Budget) clampTo(limit Budget) Budget {
	if limit.StageDeadlineMS > 0 && b.StageDeadlineMS > limit.StageDeadlineMS {
		b.StageDeadlineMS = limit.StageDeadlineMS
	}
	if limit.InterpSteps > 0 && b.InterpSteps > limit.InterpSteps {
		b.InterpSteps = limit.InterpSteps
	}
	if limit.FuzzExecs > 0 && b.FuzzExecs > limit.FuzzExecs {
		b.FuzzExecs = limit.FuzzExecs
	}
	if limit.MaxIterations > 0 && b.MaxIterations > limit.MaxIterations {
		b.MaxIterations = limit.MaxIterations
	}
	if limit.Workers > 0 && b.Workers > limit.Workers {
		b.Workers = limit.Workers
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
