package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// readJournal parses every well-formed record in a state dir's journal.
func readJournal(t *testing.T, stateDir string) []journalRecord {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(stateDir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var recs []journalRecord
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err == nil {
			recs = append(recs, rec)
		}
	}
	return recs
}

// lastState returns a job's final journaled state ("" when absent).
func lastState(recs []journalRecord, id string) State {
	var st State
	for _, r := range recs {
		if r.ID == id {
			st = r.State
		}
	}
	return st
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	hreq, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func readyzCode(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// awaitRunning polls until the job is running and has emitted at least
// minEvents events (so an interrupt lands demonstrably mid-run).
func awaitRunning(t *testing.T, ts *httptest.Server, id string, minEvents int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == StateRunning && st.Events >= minEvents {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s finished before it could be interrupted (state %s)", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// mustJSON renders v deterministically for equality checks.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJournalReplayTerminal: a finished job survives a restart — the
// new server re-reports the same id, state, and result payload from
// the journal, and the id sequence continues past it.
func TestJournalReplayTerminal(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()

	s1 := New(Options{StateDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	st, resp := postJob(t, ts1, Request{
		Kind: KindRepair, Source: sub.Source, Kernel: sub.Kernel, Budget: smallBudget(),
	}, "client-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fin := awaitTerminal(t, ts1, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %q, want done", fin.State)
	}
	ts1.Close()
	s1.Close()

	s2 := New(Options{StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	re := getStatus(t, ts2, st.ID)
	if re.State != StateDone {
		t.Fatalf("replayed state = %q, want done", re.State)
	}
	if !re.Resumed {
		t.Error("replayed terminal job not marked resumed")
	}
	if got, want := mustJSON(t, re.Result), mustJSON(t, fin.Result); got != want {
		t.Errorf("replayed result diverges from the original:\n  want: %s\n  got:  %s", want, got)
	}
	// The id sequence must not collide with journaled history.
	st2, resp2 := postJob(t, ts2, Request{
		Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
	}, "client-a")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart submit: status %d", resp2.StatusCode)
	}
	if st2.ID == st.ID {
		t.Fatalf("restarted server reissued job id %s", st.ID)
	}
	awaitTerminal(t, ts2, st2.ID)
	// No checkpoint file may outlive a terminal job.
	if ids := sortedCheckpointIDs(dir); len(ids) != 0 {
		t.Errorf("terminal jobs left checkpoint files: %v", ids)
	}
}

// TestJournalReplayRequeue: a job that was accepted but never ran
// (crash with a cold pool) is re-enqueued on restart and runs to done
// under its original id.
func TestJournalReplayRequeue(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()

	// Gate the pool shut so the job is journaled accepted but never
	// starts; Close() then abandons it exactly like a crash would.
	s1 := newServer(Options{StateDir: dir, Pool: 1})
	if err := s1.recover(); err != nil {
		t.Fatal(err)
	}
	s1.gate = make(chan struct{})
	s1.start()
	ts1 := httptest.NewServer(s1.Handler())
	st, resp := postJob(t, ts1, Request{
		Kind: KindRepair, Source: sub.Source, Kernel: sub.Kernel, Budget: smallBudget(),
	}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	ts1.Close()
	s1.Close()
	if got := lastState(readJournal(t, dir), st.ID); got != stateAccepted {
		t.Fatalf("journal state = %q, want accepted", got)
	}

	s2 := New(Options{StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	fin := awaitTerminal(t, ts2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("requeued job state = %q, want done", fin.State)
	}
	if !fin.Resumed {
		t.Error("requeued job not marked resumed")
	}
	if fin.Result == nil || fin.Result.Repair == nil {
		t.Fatal("requeued job has no repair result")
	}
	if got := lastState(readJournal(t, dir), st.ID); got != StateDone {
		t.Errorf("journal state = %q, want done", got)
	}
}

// TestJournalCorruptTailSurvives: a torn final journal line (the shape
// a SIGKILL mid-append leaves) is skipped on replay; every complete
// record before it is preserved.
func TestJournalCorruptTailSurvives(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()

	s1 := New(Options{StateDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	st, _ := postJob(t, ts1, Request{
		Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
	}, "")
	fin := awaitTerminal(t, ts1, st.ID)
	ts1.Close()
	s1.Close()

	// Tear the file mid-line.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"j-9999`)
	f.Close()

	s2 := New(Options{StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	re := getStatus(t, ts2, st.ID)
	if re.State != fin.State {
		t.Errorf("state after torn tail = %q, want %q", re.State, fin.State)
	}
	// The compacted journal must have healed: no partial line remains.
	for _, rec := range readJournal(t, dir) {
		if rec.ID == "j-9999" {
			t.Error("torn record resurrected by compaction")
		}
	}
}

// TestDrainQuiesces: a drain stops admission (429 "draining", /readyz
// 503), checkpoint-stops the running job past the deadline, and the
// journal keeps that job resumable; a restart re-runs it to done.
func TestDrainQuiesces(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()

	s1 := New(Options{StateDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	if code := readyzCode(t, ts1); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	st, _ := postJob(t, ts1, Request{
		Kind: KindFuzz, Source: sub.Source, Kernel: sub.Kernel,
		Budget: Budget{FuzzExecs: 20_000},
	}, "")
	awaitRunning(t, ts1, st.ID, 5)

	stopped := s1.Drain(time.Millisecond)
	if stopped != 1 {
		t.Fatalf("Drain checkpoint-stopped %d jobs, want 1", stopped)
	}
	if code := readyzCode(t, ts1); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", code)
	}
	if _, resp := postJob(t, ts1, Request{
		Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
	}, ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("submit during drain: status %d, want 429", resp.StatusCode)
	}
	// In-process view: cancelled with a partial result. Durable view:
	// checkpointed, i.e. resumable.
	fin := getStatus(t, ts1, st.ID)
	if fin.State != StateCancelled || fin.Result == nil || !fin.Result.Partial {
		t.Errorf("drained job in-memory state = %+v, want cancelled+partial", fin.State)
	}
	if got := lastState(readJournal(t, dir), st.ID); got != stateCheckpointed {
		t.Fatalf("journal state after drain = %q, want checkpointed", got)
	}
	ts1.Close()
	s1.Close()

	s2 := New(Options{StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	refin := awaitTerminal(t, ts2, st.ID)
	if refin.State != StateDone {
		t.Fatalf("resumed job state = %q, want done", refin.State)
	}
	if refin.Result == nil || refin.Result.Fuzz == nil || refin.Result.Partial {
		t.Fatalf("resumed job result = %+v, want a complete fuzz result", refin.Result)
	}
}

// TestDrainFinishesQuickJobs: jobs that complete inside the deadline
// terminate normally — nothing is checkpoint-stopped and the journal
// records done.
func TestDrainFinishesQuickJobs(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()
	s := New(Options{StateDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	st, _ := postJob(t, ts, Request{
		Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
	}, "")
	if stopped := s.Drain(60 * time.Second); stopped != 0 {
		t.Fatalf("Drain checkpoint-stopped %d jobs, want 0", stopped)
	}
	fin := getStatus(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state after drain = %q, want done", fin.State)
	}
	if got := lastState(readJournal(t, dir), st.ID); got != StateDone {
		t.Errorf("journal state = %q, want done", got)
	}
}

// TestCancelQueuedAndDoubleDelete: DELETE on a still-queued job turns
// it terminal with exactly one journaled cancellation; a second DELETE
// is idempotent (200, no new journal record, no double accounting).
func TestCancelQueuedAndDoubleDelete(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()

	s := newServer(Options{StateDir: dir, Pool: 1, PerClient: -1})
	if err := s.recover(); err != nil {
		t.Fatal(err)
	}
	s.gate = make(chan struct{})
	s.start()
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Two jobs: the first parks at the gate, the second stays queued.
	req := Request{Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel}
	_, r1 := postJob(t, ts, req, "")
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", r1.StatusCode)
	}
	st2, r2 := postJob(t, ts, req, "")
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", r2.StatusCode)
	}

	if resp := deleteJob(t, ts, st2.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	fin := getStatus(t, ts, st2.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", fin.State)
	}
	cancels := func() int {
		n := 0
		for _, rec := range readJournal(t, dir) {
			if rec.ID == st2.ID && rec.State == StateCancelled {
				n++
			}
		}
		return n
	}
	if n := cancels(); n != 1 {
		t.Fatalf("journaled %d cancellations, want 1", n)
	}
	if resp := deleteJob(t, ts, st2.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("second DELETE: status %d", resp.StatusCode)
	}
	if n := cancels(); n != 1 {
		t.Errorf("double DELETE journaled %d cancellations, want 1", n)
	}
	if n := s.metrics.Counter("serve.jobs." + string(StateCancelled)); n != 1 {
		t.Errorf("serve.jobs.cancelled = %d, want 1 (double accounting)", n)
	}
	close(s.gate)
	awaitTerminal(t, ts, "j-000001")
}

// TestCancelRacesDrain: an explicit DELETE during a drain wins — the
// job journals cancelled (terminal across restarts), never
// checkpointed.
func TestCancelRacesDrain(t *testing.T) {
	sub := subjectP2(t)
	dir := t.TempDir()
	s := New(Options{StateDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	st, _ := postJob(t, ts, Request{
		Kind: KindFuzz, Source: sub.Source, Kernel: sub.Kernel,
		Budget: Budget{FuzzExecs: 20_000},
	}, "")
	awaitRunning(t, ts, st.ID, 5)

	// Long-deadline drain waits for the job; the DELETE lands while the
	// drain is in progress.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Drain(60 * time.Second)
	}()
	for s.metrics.Counter("serve.jobs.rejected.draining") == 0 {
		if _, resp := postJob(t, ts, Request{
			Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
		}, "probe"); resp.StatusCode == http.StatusAccepted {
			t.Fatal("submission accepted during drain")
		}
		time.Sleep(time.Millisecond)
	}
	if resp := deleteJob(t, ts, st.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE during drain: status %d", resp.StatusCode)
	}
	wg.Wait()
	if got := lastState(readJournal(t, dir), st.ID); got != StateCancelled {
		t.Errorf("journal state = %q, want cancelled (user intent outranks drain)", got)
	}

	// A restart must NOT resurrect the cancelled job.
	ts.Close()
	s.Close()
	s2 := New(Options{StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	re := getStatus(t, ts2, st.ID)
	if re.State != StateCancelled {
		t.Errorf("state after restart = %q, want cancelled", re.State)
	}
}

// TestDrainResumeRepairParity is the end-to-end durability contract in
// process: a repair job drain-stopped mid-search resumes after restart
// to a result and event trace byte-identical to an undisturbed run.
func TestDrainResumeRepairParity(t *testing.T) {
	sub := subjectP2(t)
	// Workers=1 serializes the paced evaluations below, so the time
	// between the first committed candidate and the last evaluation is
	// a wide, deterministic interrupt window.
	budget := Budget{MaxIterations: 64, Workers: 1}
	req := Request{
		Kind: KindRepair, Source: sub.Source, Kernel: sub.Kernel, Budget: budget,
		Targets: []string{"vivado_hls:xcvu9p", "vivado_hls:zc706", "vitis:aws_f1"},
	}

	// Control: same job on a stateless server.
	_, tsC := startServer(t, Options{})
	stC, _ := postJob(t, tsC, req, "")
	finC := awaitTerminal(t, tsC, stC.ID)
	if finC.State != StateDone {
		t.Fatalf("control state = %q, want done", finC.State)
	}
	controlEvents := eventBody(t, tsC, stC.ID)

	// Durable server: drain-stop the job mid-search. The evalDelay
	// paces evaluations in real time so the drain deterministically
	// lands mid-run; it is outside the determinism envelope, so the
	// paced run's outcome log matches the unpaced control.
	dir := t.TempDir()
	s1 := New(Options{StateDir: dir, evalDelay: 300 * time.Millisecond})
	ts1 := httptest.NewServer(s1.Handler())
	st, _ := postJob(t, ts1, req, "")
	awaitRunning(t, ts1, st.ID, 1)
	if stopped := s1.Drain(time.Millisecond); stopped != 1 {
		t.Fatalf("Drain checkpoint-stopped %d jobs, want 1", stopped)
	}
	ts1.Close()
	s1.Close()

	// …and resume it on a restarted server.
	s2 := New(Options{StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	fin := awaitTerminal(t, ts2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed state = %q, want done", fin.State)
	}
	if got, want := mustJSON(t, fin.Result), mustJSON(t, finC.Result); got != want {
		t.Errorf("resumed result diverges from control:\n  want: %s\n  got:  %s", want, got)
	}
	if resumedEvents := eventBody(t, ts2, st.ID); !bytes.Equal(resumedEvents, controlEvents) {
		t.Errorf("resumed trace diverges from control (%d vs %d bytes)",
			len(resumedEvents), len(controlEvents))
	}
}
