// Write-ahead job journal: the durability layer behind -state-dir.
//
// Every job state transition is appended to <state-dir>/journal.jsonl
// and fsynced before the transition is visible to clients — in
// particular, a submission is journaled before its 202 response, so an
// accepted job survives any crash after the client sees it. The
// journal is append-only JSONL in the same crash-tolerance style as
// evalcache's disk log: a torn final line (the shape a SIGKILL
// mid-append leaves) is skipped on replay, and every replay compacts
// the log — one accepted record plus one latest-state record per job
// — via temp file + fsync + atomic rename before reopening it for
// appends.
//
// Replay folds records per job id, last record winning, with the
// request payload, client, and correlation id always taken from the
// accepted record. Terminal jobs are restored as reportable history;
// non-terminal jobs (accepted, queued, running, or checkpointed by a
// drain) are re-enqueued to run again — repair and transpile jobs
// resume from their per-job checkpoint file, so the re-run's result
// and trace are byte-identical to what the interrupted run would have
// produced.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hetero/heterogen/internal/crashpoint"
	"github.com/hetero/heterogen/internal/guard"
)

// Journal-only states: they appear in journal records, never in a
// Job's in-memory or API-visible state.
const (
	// stateAccepted is the durable admission record; it carries the
	// full request so a restart can re-create the job.
	stateAccepted State = "accepted"
	// stateCheckpointed marks a running job a graceful drain stopped at
	// a commit point: not terminal — a restart re-enqueues it and the
	// repair search resumes from its checkpoint file.
	stateCheckpointed State = "checkpointed"
)

// journalRecord is one JSONL line: a job state transition.
type journalRecord struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Client string `json:"client,omitempty"`
	Corr   string `json:"corr,omitempty"`
	// Req rides only on accepted records (the durable copy of the
	// submission); Result/Error/Failure only on terminal records.
	Req     *Request            `json:"req,omitempty"`
	Result  *Result             `json:"result,omitempty"`
	Error   string              `json:"error,omitempty"`
	Failure *guard.StageFailure `json:"failure,omitempty"`
	// MS is the transition's wall clock in Unix milliseconds.
	MS int64 `json:"ms"`
}

// journalEntry is one job's folded journal state after replay.
type journalEntry struct {
	id         string
	state      State // last journaled state (may be accepted/checkpointed)
	client     string
	corr       string
	req        Request
	result     *Result
	errMsg     string
	failure    *guard.StageFailure
	acceptedMS int64
	lastMS     int64
}

// journal is the append side. Appends are serialized and fsynced: a
// record returned from append survives a crash immediately after.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	broken bool
}

const journalFile = "journal.jsonl"

// openJournal replays <dir>/journal.jsonl, compacts it, and reopens it
// for appending. The returned entries are in first-accepted order.
// A missing file is an empty journal, not an error.
func openJournal(dir string) (*journal, []*journalEntry, error) {
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}

	byID := map[string]*journalEntry{}
	var order []string
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.ID == "" || rec.State == "" {
			// Torn or corrupt line — a crash mid-append. Skip it; every
			// complete record before it already replayed.
			continue
		}
		e := byID[rec.ID]
		if e == nil {
			e = &journalEntry{id: rec.ID}
			byID[rec.ID] = e
			order = append(order, rec.ID)
		}
		e.state = rec.State
		e.lastMS = rec.MS
		if rec.State == stateAccepted {
			e.client, e.corr, e.acceptedMS = rec.Client, rec.Corr, rec.MS
			if rec.Req != nil {
				e.req = *rec.Req
			}
		}
		if rec.State.Terminal() {
			e.result, e.errMsg, e.failure = rec.Result, rec.Error, rec.Failure
		}
	}

	entries := make([]*journalEntry, 0, len(order))
	for _, id := range order {
		e := byID[id]
		if e.acceptedMS == 0 && e.req.Kind == "" {
			// A transition whose accepted record was lost to corruption:
			// nothing to re-create the job from. Drop it.
			continue
		}
		entries = append(entries, e)
	}

	// Compact: rewrite the fold, atomically, then append from there.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	tmp := path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(tf)
	for _, e := range entries {
		req := e.req
		writeRecord(w, journalRecord{ID: e.id, State: stateAccepted,
			Client: e.client, Corr: e.corr, Req: &req, MS: e.acceptedMS})
		if e.state != stateAccepted {
			rec := journalRecord{ID: e.id, State: e.state, MS: e.lastMS}
			if e.state.Terminal() {
				rec.Result, rec.Error, rec.Failure = e.result, e.errMsg, e.failure
			}
			writeRecord(w, rec)
		}
	}
	if err := w.Flush(); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return nil, nil, err
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{f: f, path: path}, entries, nil
}

func writeRecord(w *bufio.Writer, rec journalRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	w.Write(b)
	w.WriteByte('\n')
}

// append writes one record and fsyncs it — the record is durable when
// append returns. A write error marks the journal broken (subsequent
// appends are dropped) rather than failing the job.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return fmt.Errorf("serve: journal broken")
	}
	if crashpoint.Hit("serve.journal.append") {
		// Stage the torn state a kill mid-append leaves: half a line,
		// flushed, then SIGKILL with no cleanup.
		j.f.Write(line[:len(line)/2])
		j.f.Sync()
		crashpoint.Kill()
	}
	if _, err := j.f.Write(line); err != nil {
		j.broken = true
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
		return err
	}
	return nil
}

// close flushes and closes the append handle.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Sync()
		j.f.Close()
		j.f = nil
		j.broken = true
	}
}

// maxJobID extracts the largest numeric suffix among "j-NNNNNN" ids so
// a restarted server's id sequence continues past every journaled job.
func maxJobID(entries []*journalEntry) int64 {
	var max int64
	for _, e := range entries {
		if n, ok := parseJobID(e.id); ok && n > max {
			max = n
		}
	}
	return max
}

func parseJobID(id string) (int64, bool) {
	s, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}

// record builds the journal line for a job's transition to st.
func record(j *Job, st State) journalRecord {
	return journalRecord{ID: j.id, State: st, MS: time.Now().UnixMilli()}
}

// sortedCheckpointIDs lists job ids with a checkpoint file under
// dir/checkpoints (test/ops helper for orphan sweeps).
func sortedCheckpointIDs(stateDir string) []string {
	matches, _ := filepath.Glob(filepath.Join(stateDir, "checkpoints", "*.ckpt"))
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, strings.TrimSuffix(filepath.Base(m), ".ckpt"))
	}
	sort.Strings(ids)
	return ids
}
