package serve

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/obs/span"
)

// discardLogger drops everything; it backs a nil Options.Logger so
// logging call sites never branch.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// logger returns the configured structured logger (never nil).
func (s *Server) logger() *slog.Logger {
	if s.opts.Logger != nil {
		return s.opts.Logger
	}
	return discardLogger
}

// jobLogger stamps a job's identity on every record: the correlation
// id is the thread an operator follows from admission through queue,
// stage events, terminal transition, and trace persistence.
func (s *Server) jobLogger(j *Job) *slog.Logger {
	return s.logger().With(
		"job", j.id,
		"correlation_id", j.corr,
		"kind", string(j.kind),
		"client", j.client,
	)
}

// phaseLogger bridges the job's observability stream into the
// structured log: phase boundaries and warnings become log records
// carrying the job's correlation id. Candidate/exec events are
// deliberately not logged — at one event per fuzz execution they would
// drown the log; they remain available on the job's event stream and
// in the persisted trace.
type phaseLogger struct {
	log *slog.Logger
}

func (p phaseLogger) Emit(e obs.Event) {
	switch e.Type {
	case obs.EvPhaseStart:
		if e.Phase != nil {
			p.log.Info("phase start", "phase", e.Phase.Name, "virtual_s", e.Virtual)
		}
	case obs.EvPhaseEnd:
		if e.Phase != nil {
			p.log.Info("phase end", "phase", e.Phase.Name,
				"virtual_s", e.Virtual, "virtual_delta_s", e.Phase.VirtualDelta,
				"wall_ms", float64(e.Phase.WallNS)/1e6)
		}
	case obs.EvWarning:
		p.log.Warn("pipeline warning", "warning", e.Warn)
	}
}

// persistTrace writes a terminal job's deterministic event trace and
// its operational sidecar into the retention directory:
//
//	<dir>/<id>.jsonl      — the event stream, byte-identical to what
//	                        /v1/jobs/{id}/events streamed (wall-free,
//	                        worker-count independent)
//	<dir>/<id>.meta.json  — the nondeterministic envelope: correlation
//	                        id, state, queue wait, wall time, and the
//	                        job-attributed cache delta
//
// Both writes are atomic (temp file + rename) so a concurrently
// running hgstat ingestion never sees a torn trace. Persistence
// failures are contained: they log, count into
// serve.trace.persist_errors, and never affect the job's outcome.
func (s *Server) persistTrace(j *Job, st State, queueWait, wall time.Duration, cacheDelta evalcache.Stats) {
	dir := s.opts.TraceDir
	if dir == "" {
		return
	}
	log := s.jobLogger(j)
	lines, _, _ := j.events.next(0)
	var buf []byte
	for _, line := range lines {
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	meta := span.RunMeta{
		ID:            j.id,
		CorrelationID: j.corr,
		Kind:          string(j.kind),
		Client:        j.client,
		State:         string(st),
		QueueWaitMS:   float64(queueWait.Nanoseconds()) / 1e6,
		WallMS:        float64(wall.Nanoseconds()) / 1e6,
		Events:        len(lines),
	}
	j.mu.Lock()
	if j.result != nil {
		meta.Partial = j.result.Partial
	}
	meta.Resumed = j.resumed
	j.mu.Unlock()
	if len(cacheDelta.Stages) > 0 {
		meta.Cache = &cacheDelta
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err == nil {
		err = atomicWrite(filepath.Join(dir, j.id+".jsonl"), buf)
	}
	if err == nil {
		err = atomicWrite(filepath.Join(dir, j.id+".meta.json"), append(mb, '\n'))
	}
	if err != nil {
		s.metrics.Add("serve.trace.persist_errors", 1)
		log.Error("trace persistence failed", "error", err)
		return
	}
	s.metrics.Add("serve.trace.persisted", 1)
	log.Info("trace persisted", "events", len(lines), "dir", dir)
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runtimeGauges samples the Go runtime at scrape time: goroutines,
// heap occupancy, and GC activity. They ride only on the Prometheus
// exposition (the JSON document stays a pure registry snapshot).
func runtimeGauges() map[string]float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]float64{
		"runtime.goroutines":         float64(runtime.NumGoroutine()),
		"runtime.heap_alloc_bytes":   float64(ms.HeapAlloc),
		"runtime.heap_sys_bytes":     float64(ms.HeapSys),
		"runtime.heap_objects":       float64(ms.HeapObjects),
		"runtime.gc_runs":            float64(ms.NumGC),
		"runtime.gc_pause_total_s":   float64(ms.PauseTotalNs) / 1e9,
		"runtime.next_gc_bytes":      float64(ms.NextGC),
		"runtime.total_alloc_bytes":  float64(ms.TotalAlloc),
		"runtime.stack_inuse_bytes":  float64(ms.StackInuse),
		"runtime.mallocs_cumulative": float64(ms.Mallocs),
	}
}
