package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// routes builds the API mux:
//
//	POST   /v1/jobs             submit a job (Request body) → 202 Status
//	GET    /v1/jobs/{id}        job status (+ result once terminal)
//	GET    /v1/jobs/{id}/events NDJSON stream of the job's obs events
//	DELETE /v1/jobs/{id}        request cancellation → Status
//	GET    /metrics             registry JSON (?format=text for humans)
//	GET    /healthz             liveness + basic gauges
//	GET    /readyz              readiness: 503 during journal replay,
//	                            drain, or after close
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// clientID identifies the requester for the per-client in-flight cap:
// the X-Client-ID header when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	j, err := s.SubmitWithCorrelation(req, clientID(r), r.Header.Get("X-Correlation-ID"))
	if err != nil {
		var adm *AdmissionError
		if errors.As(err, &adm) {
			secs := int(adm.RetryAfter.Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: adm.Reason, RetryAfter: secs})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.Get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, s.Get(id).Status())
}

// handleEvents streams the job's event log as NDJSON: everything
// buffered so far is replayed, then the stream follows live emissions
// until the job is terminal or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		lines, done, wake := j.events.next(sent)
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "text", "prometheus":
		// Both names serve Prometheus text exposition 0.0.4 — the scrape
		// format is the plain-text view. Runtime gauges are sampled at
		// scrape time; the JSON default stays a pure registry snapshot.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.metrics.Prometheus(runtimeGauges()))
		return
	}
	b, err := s.metrics.JSON()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleReadyz is the load-balancer readiness gate, distinct from
// /healthz liveness: the process can be healthy (alive, should not be
// restarted) while not ready (must not receive new work). Not-ready
// phases are journal replay at startup, a graceful drain, and the
// closed end state.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready, draining, closed := s.ready, s.draining, s.closed
	s.mu.Unlock()
	reason := ""
	switch {
	case closed:
		reason = "closed"
	case draining:
		reason = "draining"
	case !ready:
		reason = "replaying_journal"
	}
	code := http.StatusOK
	if reason != "" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ready": reason == "", "reason": reason})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	closed := s.closed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          !closed,
		"jobs":        jobs,
		"queue_depth": s.metrics.Counter("serve.queue.depth"),
		"running":     s.metrics.Counter("serve.jobs.running"),
		"pool":        s.opts.Pool,
		"queue_cap":   s.opts.QueueDepth,
		"uptime_s":    int64(time.Since(s.started).Seconds()),
	})
}
