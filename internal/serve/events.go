package serve

import (
	"encoding/json"
	"sync"

	"github.com/hetero/heterogen/internal/obs"
)

// eventLog is one job's private observability stream: an append-only
// buffer of JSONL-encoded obs events that supports replay-then-follow
// readers (the /events NDJSON handler). Like a TraceWriter, it strips
// the one nondeterministic field — wall-clock phase durations — so the
// stream is byte-identical for any Workers value.
type eventLog struct {
	mu    sync.Mutex
	lines []json.RawMessage
	done  bool
	// wake is closed and replaced on every append and on finish, so a
	// follower blocked in next wakes without polling.
	wake chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// Emit implements obs.Observer on the job's commit goroutine.
func (l *eventLog) Emit(e obs.Event) {
	if e.Phase != nil && e.Phase.WallNS != 0 {
		p := *e.Phase
		p.WallNS = 0
		e.Phase = &p
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	if !l.done {
		l.lines = append(l.lines, b)
		l.wakeLocked()
	}
	l.mu.Unlock()
}

func (l *eventLog) wakeLocked() {
	close(l.wake)
	l.wake = make(chan struct{})
}

// finish marks the stream complete; followers drain and stop.
func (l *eventLog) finish() {
	l.mu.Lock()
	if !l.done {
		l.done = true
		l.wakeLocked()
	}
	l.mu.Unlock()
}

// next returns the lines at index from onward, whether the log is
// finished, and a channel closed on the next append/finish (for
// blocking until there is more to read).
func (l *eventLog) next(from int) ([]json.RawMessage, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var lines []json.RawMessage
	if from < len(l.lines) {
		lines = l.lines[from:]
	}
	return lines, l.done, l.wake
}

// Len is the number of events buffered so far.
func (l *eventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}
