// Package serve is the service layer of the pipeline: a long-running
// HTTP+JSON job daemon (cmd/hgserve) that runs transpile / check /
// repair / fuzz jobs on a bounded worker pool with admission control,
// per-job budgets, streamed observability, and cooperative cancellation.
//
// The design maps the library's existing contracts onto a server:
//
//   - Every job runs behind internal/guard with budgets clamped by
//     server-side limits, so one hostile input costs one job, never the
//     daemon (a panicking stage surfaces as a typed *guard.StageFailure
//     in the job result).
//   - Every job gets a private event log fed by the same obs.Observer
//     stream a CLI trace would contain, wall-clock stripped, replayable
//     over GET /v1/jobs/{id}/events as NDJSON — byte-identical for any
//     Workers value, per the commit-in-order contract.
//   - Cancellation (DELETE /v1/jobs/{id}) lands at the pipeline's commit
//     points and the job keeps its best-so-far partial result.
//   - Admission control is a bounded queue plus a per-client in-flight
//     cap; an overfull server answers 429 with Retry-After instead of
//     degrading everyone.
//
// All jobs on one server share its evaluation cache (internal/evalcache,
// typically sharded via Options.Shards) and its metrics registry,
// exported at GET /metrics. See docs/OPERATIONS.md for the operator's
// manual: flags, clamps, API examples, the metrics catalog, and
// quarantine triage.
package serve
