package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/obs/agg"
	"github.com/hetero/heterogen/internal/obs/span"
)

// TestTraceRetentionRoundTrip: a terminal job's trace lands in the
// retention dir, matches the /events stream byte for byte, carries a
// sidecar with the job's envelope, and ingests cleanly into the
// hgstat warehouse.
func TestTraceRetentionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := subjectP2(t)
	_, ts := startServer(t, Options{TraceDir: dir, Cache: cache})
	st, _ := postJob(t, ts, Request{
		Kind: KindTranspile, Source: sub.Source, Kernel: sub.Kernel,
		Budget: smallBudget(),
	}, "tester")
	fin := awaitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job state %s: %s", fin.State, fin.Error)
	}
	streamed := eventBody(t, ts, st.ID)

	var retained []byte
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		retained, err = os.ReadFile(filepath.Join(dir, st.ID+".jsonl"))
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("retained trace never appeared: %v", err)
	}
	if !bytes.Equal(retained, streamed) {
		t.Fatalf("retained trace differs from /events stream (%d vs %d bytes)",
			len(retained), len(streamed))
	}
	if bytes.Contains(retained, []byte(`"wall_ns"`)) {
		t.Fatal("retained trace leaks wall time")
	}

	mb, err := os.ReadFile(filepath.Join(dir, st.ID+".meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta span.RunMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.ID != st.ID || meta.Kind != "transpile" || meta.State != "done" {
		t.Fatalf("sidecar envelope: %+v", meta)
	}
	if meta.CorrelationID != st.ID {
		t.Fatalf("default correlation id %q, want job id %q", meta.CorrelationID, st.ID)
	}
	if meta.WallMS <= 0 || meta.Events == 0 {
		t.Fatalf("sidecar missing wall/events: %+v", meta)
	}
	if meta.Cache == nil || meta.Cache.Misses() == 0 {
		t.Fatalf("sidecar missing cache delta: %+v", meta.Cache)
	}

	in := agg.NewIngestor()
	n, err := in.IngestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ingested %d traces, want 1", n)
	}
	fleet := in.Snapshot()
	if fleet.Runs == 0 || fleet.Funnel.Repairs == 0 {
		t.Fatalf("warehouse saw no runs: %+v", fleet.Funnel)
	}
	if len(fleet.Cache) == 0 {
		t.Fatal("warehouse lost the cache attribution")
	}
	if len(fleet.JobWallMS) != 1 || fleet.JobWallMS[0].Name != "transpile" {
		t.Fatalf("job wall attribution: %+v", fleet.JobWallMS)
	}

	// The retained trace builds into a span tree whose run totals match
	// the event stream's virtual account.
	events, err := obs.ParseTrace(bytes.NewReader(retained))
	if err != nil {
		t.Fatal(err)
	}
	runs := span.Build(events)
	if len(runs) != 1 || len(runs[0].Root.Children) == 0 {
		t.Fatalf("span build: %d runs", len(runs))
	}
}

// TestRetainedTraceWorkerParity: the retained trace bytes are identical
// whatever worker count the job ran with — the fleet warehouse can mix
// traces from differently sized deployments.
func TestRetainedTraceWorkerParity(t *testing.T) {
	sub := subjectP2(t)
	traceFor := func(workers int) []byte {
		dir := t.TempDir()
		_, ts := startServer(t, Options{TraceDir: dir})
		b := smallBudget()
		b.Workers = workers
		st, _ := postJob(t, ts, Request{
			Kind: KindTranspile, Source: sub.Source, Kernel: sub.Kernel, Budget: b,
		}, "parity")
		fin := awaitTerminal(t, ts, st.ID)
		if fin.State != StateDone {
			t.Fatalf("workers=%d: state %s: %s", workers, fin.State, fin.Error)
		}
		var data []byte
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			data, err = os.ReadFile(filepath.Join(dir, st.ID+".jsonl"))
			if err == nil {
				return data
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("workers=%d: trace never retained: %v", workers, err)
		return nil
	}
	one := traceFor(1)
	four := traceFor(4)
	if !bytes.Equal(one, four) {
		t.Fatal("retained traces differ across worker counts")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler writes
// from worker goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCorrelationIDThreading: a caller-supplied X-Correlation-ID
// surfaces in the job status, the structured log, and the retained
// sidecar.
func TestCorrelationIDThreading(t *testing.T) {
	dir := t.TempDir()
	// The worker goroutine logs "trace persisted" after the sidecar the
	// test polls for is visible, so reads of the log must synchronize
	// with slog's writes.
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	sub := subjectP2(t)
	_, ts := startServer(t, Options{TraceDir: dir, Logger: logger})

	body, _ := json.Marshal(Request{
		Kind: KindTranspile, Source: sub.Source, Kernel: sub.Kernel, Budget: smallBudget(),
	})
	hreq, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("X-Correlation-ID", "req-abc-123")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.CorrelationID != "req-abc-123" {
		t.Fatalf("status correlation id %q", st.CorrelationID)
	}
	awaitTerminal(t, ts, st.ID)

	var meta span.RunMeta
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mb, err := os.ReadFile(filepath.Join(dir, st.ID+".meta.json"))
		if err == nil {
			if err := json.Unmarshal(mb, &meta); err != nil {
				t.Fatal(err)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if meta.CorrelationID != "req-abc-123" {
		t.Fatalf("sidecar correlation id %q", meta.CorrelationID)
	}

	logs := logBuf.String()
	for _, want := range []string{
		`"msg":"job admitted"`, `"msg":"job running"`, `"msg":"job terminal"`,
		`"msg":"phase start"`, `"correlation_id":"req-abc-123"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %s\n%s", want, logs)
		}
	}
	// Every job-scoped record must carry the correlation id.
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line: %s", line)
		}
		if _, ok := rec["job"]; ok {
			if rec["correlation_id"] != "req-abc-123" {
				t.Errorf("job record without correlation id: %s", line)
			}
		}
	}
}

// TestQueueWaitSLOCounter: jobs held past the objective count into the
// violations counter.
func TestQueueWaitSLOCounter(t *testing.T) {
	sub := subjectP2(t)
	s := newServer(Options{Pool: 1, QueueWaitSLO: time.Nanosecond})
	s.gate = make(chan struct{}, 16)
	s.start()
	t.Cleanup(s.Close)

	j, err := s.Submit(Request{Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel}, "c")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // hold in queue past the 1ns objective
	s.gate <- struct{}{}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !j.Status().State.Terminal() {
		time.Sleep(2 * time.Millisecond)
	}
	if !j.Status().State.Terminal() {
		t.Fatal("job never finished")
	}
	if got := s.metrics.Counter("serve.slo.queue_wait_violations"); got != 1 {
		t.Fatalf("queue wait violations = %d, want 1", got)
	}
}
