// Quarantine: deterministic failures become committable reproducers.
//
// When a guarded stage fails deterministically on a concrete input, the
// input is minimized with the conformance harness's AST delta-debugging
// reducer (progen.Reduce) against a keep-predicate that replays the
// failing stage, then written under Options.QuarantineDir as a .c file
// plus a .json sidecar describing the failure. The convention mirrors
// testdata/conform/: reproducers are meant to be committed under
// testdata/quarantine/ and replayed by a regression test.
//
// Policy details:
//
//   - At most one reproducer per (stage, class) per Guard instance:
//     under heavy injection (chaos matrix, Rate=1) thousands of
//     identical failures would otherwise reduce and write thousands of
//     files.
//   - Transient failures are never quarantined — they are environmental,
//     not input-determined.
//   - Real (non-injected) deadline overruns are never quarantined
//     either: every reducer trial would have to run to the deadline,
//     turning minimization into minutes of wall-clock. Injected
//     deadline faults classify instantly and do quarantine, which is
//     what the chaos matrix exercises.
//   - Quarantine itself never fails the pipeline: I/O errors degrade to
//     a warning.
package guard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/progen"
)

// contain records one terminal failure: metrics, the single warning per
// (stage, class), and — for deterministic classes on quarantinable
// inputs — the minimized reproducer. Runs on whatever goroutine hit the
// failure; everything here is either mutex-protected or process-local,
// and nothing emits trace events (the commit-in-order contract).
func (g *Guard) contain(opts Options, sf *StageFailure, u *cast.Unit, keep func(*cast.Unit) bool) {
	if opts.Metrics != nil {
		opts.Metrics.Add("guard.failures."+string(sf.Stage)+"."+string(sf.Class), 1)
	}
	if g == nil {
		return
	}
	g.mu.Lock()
	first := !g.seen[sf.Label()]
	g.seen[sf.Label()] = true
	g.mu.Unlock()
	if !first {
		return
	}
	if opts.Warn != nil {
		opts.Warn(fmt.Sprintf("guard: contained %s failure in %s stage: %s", sf.Class, sf.Stage, sf.Detail))
	}
	if opts.QuarantineDir == "" || u == nil || !quarantinable(sf) {
		return
	}
	g.quarantine(opts, sf, u, keep)
}

// quarantinable reports whether a failure class warrants a reproducer.
func quarantinable(sf *StageFailure) bool {
	switch sf.Class {
	case ClassTransient:
		return false
	case ClassDeadline:
		return sf.Injected
	}
	return true
}

// sidecar is the .json description written beside each reproducer.
type sidecar struct {
	Stage    Stage  `json:"stage"`
	Class    Class  `json:"class"`
	Detail   string `json:"detail"`
	Attempts int    `json:"attempts"`
	Injected bool   `json:"injected,omitempty"`
	// ReducedLOC / OriginalLOC record how far minimization got.
	OriginalLOC int `json:"original_loc"`
	ReducedLOC  int `json:"reduced_loc"`
}

// quarantine minimizes u against the replay predicate and writes the
// reproducer pair, recording the path on the failure.
func (g *Guard) quarantine(opts Options, sf *StageFailure, u *cast.Unit, keep func(*cast.Unit) bool) {
	warn := func(err error) {
		if opts.Warn != nil {
			opts.Warn(fmt.Sprintf("guard: quarantine of %s failure failed: %v", sf.Label(), err))
		}
	}
	input := cast.CloneUnit(u)
	reduced := input
	// Reduce assumes the predicate holds on its input; a failure that
	// does not replay (e.g. one whose trigger was environmental after
	// all) is quarantined unreduced.
	if keep(input) {
		reduced = progen.Reduce(input, keep, progen.ReduceOptions{MaxTrials: opts.ReduceTrials})
	}
	printed := cast.Print(reduced)
	if err := os.MkdirAll(opts.QuarantineDir, 0o755); err != nil {
		warn(err)
		return
	}
	base := fmt.Sprintf("%s-%s-%s", sf.Stage, sf.Class, shortHash(printed))
	cPath := filepath.Join(opts.QuarantineDir, base+".c")
	if err := os.WriteFile(cPath, []byte(printed+"\n"), 0o644); err != nil {
		warn(err)
		return
	}
	meta, err := json.MarshalIndent(sidecar{
		Stage: sf.Stage, Class: sf.Class, Detail: sf.Detail,
		Attempts: sf.Attempts, Injected: sf.Injected,
		OriginalLOC: cast.CountLines(u), ReducedLOC: cast.CountLines(reduced),
	}, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(opts.QuarantineDir, base+".json"), append(meta, '\n'), 0o644)
	}
	if err != nil {
		warn(err)
	}
	sf.Reproducer = cPath
	if opts.Metrics != nil {
		opts.Metrics.Add("guard.quarantined", 1)
	}
}
