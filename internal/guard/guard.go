package guard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/obs"
)

// Stage names one guarded toolchain stage.
type Stage string

// The guard hook points, one per expensive stage call site.
const (
	// StageParse is the C frontend (cparser.Parse).
	StageParse Stage = "parse"
	// StagePrint is canonical code emission (cast.Print) — the other
	// half of the parse/print roundtrip.
	StagePrint Stage = "print"
	// StageStyle is the lightweight pre-compilation validator
	// (hls/stylecheck).
	StageStyle Stage = "stylecheck"
	// StageCheck is the full synthesizability checker (hls/check).
	StageCheck Stage = "check"
	// StageEstimate is fabric resource estimation (hls/sim.Estimate).
	StageEstimate Stage = "estimate"
	// StageDifftest is the CPU-vs-FPGA differential test (difftest.Run).
	StageDifftest Stage = "difftest"
	// StageInterp is one raw kernel execution on the interpreter (the
	// fuzzer's exec loop).
	StageInterp Stage = "interp"
	// StageEval labels the worker-pool backstop: a panic that escaped
	// from unguarded glue between the per-stage hooks (candidate
	// cloning, cache plumbing). Not an injection point.
	StageEval Stage = "eval"
)

// Stages lists the injectable hook points in pipeline order (StageEval,
// the backstop label, is deliberately absent — nothing is invoked there).
func Stages() []Stage {
	return []Stage{StageParse, StagePrint, StageStyle, StageCheck,
		StageEstimate, StageDifftest, StageInterp}
}

// Class is a failure classification, which determines the retry policy.
type Class string

const (
	// ClassPanic is a deterministic stage crash; never retried.
	ClassPanic Class = "panic"
	// ClassDeadline is a stage deadline overrun; never retried.
	ClassDeadline Class = "deadline"
	// ClassCorrupt is an invalid stage output; never retried.
	ClassCorrupt Class = "corrupt"
	// ClassTransient is an environmental fault; retried with backoff.
	ClassTransient Class = "transient"
)

// Classes lists every failure class.
func Classes() []Class {
	return []Class{ClassPanic, ClassDeadline, ClassCorrupt, ClassTransient}
}

// StageFailure is the typed verdict of a contained stage invocation. It
// implements error; callers distinguish it from a stage's own domain
// error with AsFailure.
type StageFailure struct {
	Stage  Stage  `json:"stage"`
	Class  Class  `json:"class"`
	Detail string `json:"detail"`
	// Attempts counts invocation attempts including retries (1 when the
	// first attempt was terminal).
	Attempts int `json:"attempts"`
	// Injected marks a fault planted by an Injector (internal/chaos)
	// rather than observed from the real stage.
	Injected bool `json:"injected,omitempty"`
	// Reproducer is the path of the quarantined minimized input, when
	// one was written.
	Reproducer string `json:"reproducer,omitempty"`
}

// Error renders the failure.
func (f *StageFailure) Error() string {
	s := fmt.Sprintf("guard: %s stage failed (%s): %s", f.Stage, f.Class, f.Detail)
	if f.Reproducer != "" {
		s += " [reproducer: " + f.Reproducer + "]"
	}
	return s
}

// Label is the compact "<stage>/<class>" form used in trace events and
// metrics counter names.
func (f *StageFailure) Label() string {
	return string(f.Stage) + "/" + string(f.Class)
}

// AsFailure unwraps a StageFailure from an error (nil when err is not
// one). A stage's own domain errors — a parse diagnostic, an interpreter
// RuntimeError — pass through Do untouched and return nil here.
func AsFailure(err error) *StageFailure {
	if sf, ok := err.(*StageFailure); ok {
		return sf
	}
	return nil
}

// PanicFailure classifies a recovered panic value as a StageFailure.
// Exported for the worker-pool backstops, which recover outside Do.
func PanicFailure(stage Stage, r any) *StageFailure {
	return &StageFailure{Stage: stage, Class: ClassPanic, Attempts: 1,
		Detail: fmt.Sprintf("panic: %v", r)}
}

// Fault is an Injector's decision for one invocation attempt. The zero
// value means "no fault".
type Fault struct {
	// Class selects the failure to plant; "" injects nothing.
	Class Class
	// Detail overrides the default failure description.
	Detail string
}

// Injector decides deterministically whether an invocation faults.
// Implementations must key decisions on (stage, key, attempt) content
// only — never on call counts or clocks — so a schedule is identical
// regardless of worker scheduling (see internal/chaos).
type Injector interface {
	Fault(stage Stage, key string, attempt int) Fault
}

// Options configures a Guard.
type Options struct {
	// StageDeadline bounds each invocation attempt's real duration; 0
	// disables enforcement. When set, the stage function runs on its own
	// goroutine; an attempt that overruns is abandoned (the goroutine
	// finishes in the background) and classified ClassDeadline.
	StageDeadline time.Duration
	// InterpSteps is the interpreter step budget the pipeline should
	// apply to execution-backed stages (fuzz executions, differential
	// tests). The guard itself does not enforce it — it is configuration
	// transport, surfaced via the InterpSteps accessor and consumed by
	// internal/core. 0 keeps the per-package defaults.
	InterpSteps int64
	// TransientRetries is how many times a ClassTransient failure is
	// retried before it becomes terminal (default 2; negative disables).
	TransientRetries int
	// RetryBackoff is the real-time pause before the first transient
	// retry, doubling per attempt (default 0: no pause, which keeps
	// tests fast; deployments set e.g. 50ms).
	RetryBackoff time.Duration
	// QuarantineDir, when non-empty, receives progen.Reduce-minimized
	// reproducers of deterministic failures (see quarantine.go); ""
	// disables quarantine.
	QuarantineDir string
	// ReduceTrials caps the reducer's predicate invocations per
	// quarantined input (default 400 — each trial replays the failing
	// stage).
	ReduceTrials int
	// Injector, when non-nil, plants deterministic faults at every hook
	// point (internal/chaos). Nil disables injection.
	Injector Injector
	// Metrics, when non-nil, receives guard.* counters. Like cache hit
	// counts, these may vary with Workers (speculative evaluations are
	// guarded too); committed failure counts in traces do not.
	Metrics *obs.Registry
	// Warn, when non-nil, receives one human-readable line per distinct
	// (stage, class) failure — the single-warning channel CLIs print to
	// stderr.
	Warn func(string)
}

// defaultTransientRetries applies when Options.TransientRetries is 0.
const defaultTransientRetries = 2

// defaultReduceTrials applies when Options.ReduceTrials is 0.
const defaultReduceTrials = 400

// Guard applies the containment policy of one Options value. Safe for
// concurrent use; a nil *Guard is a valid zero-options guard.
type Guard struct {
	opts Options

	mu sync.Mutex
	// seen dedupes warnings and quarantine per (stage, class) label.
	seen map[string]bool
}

// New builds a guard, normalizing defaults.
func New(opts Options) *Guard {
	if opts.TransientRetries == 0 {
		opts.TransientRetries = defaultTransientRetries
	} else if opts.TransientRetries < 0 {
		opts.TransientRetries = 0
	}
	if opts.ReduceTrials == 0 {
		opts.ReduceTrials = defaultReduceTrials
	}
	return &Guard{opts: opts, seen: map[string]bool{}}
}

// options returns the effective configuration, nil-safe.
func (g *Guard) options() Options {
	if g == nil {
		return Options{TransientRetries: defaultTransientRetries, ReduceTrials: defaultReduceTrials}
	}
	return g.opts
}

// Injecting reports whether a fault injector is configured — hot paths
// check it before paying for per-invocation key derivation.
func (g *Guard) Injecting() bool {
	return g != nil && g.opts.Injector != nil
}

// InterpSteps returns the configured interpreter step budget (0 when
// unset or the guard is nil).
func (g *Guard) InterpSteps() int64 {
	if g == nil {
		return 0
	}
	return g.opts.InterpSteps
}

// Invocation describes one guarded stage call.
type Invocation struct {
	Stage Stage
	// Key identifies the invocation for deterministic fault injection.
	// When empty and an injector is present, it is derived from Unit's
	// printed text. Content-derived keys — never call counters — are
	// what keep injection schedules identical for any Workers value.
	Key string
	// Unit is the stage's input program; deterministic failures on it
	// are quarantined as minimized reproducers. Nil skips quarantine
	// (e.g. the parse stage, whose input is raw text).
	Unit *cast.Unit
}

// Do runs fn under the guard's containment policy and returns its
// result. fn receives the invocation's unit (or, during quarantine
// minimization, a reduced variant — stage closures must evaluate the
// unit they are handed, not a captured one). fn's own returned errors
// pass through untouched; only containment verdicts come back as
// *StageFailure.
func Do[T any](g *Guard, inv Invocation, fn func(*cast.Unit) (T, error)) (T, error) {
	opts := g.options()
	key := inv.Key
	if opts.Injector != nil && key == "" && inv.Unit != nil {
		key = safePrint(inv.Unit)
	}
	var zero T
	for attempt := 1; ; attempt++ {
		out, err := runAttempt(opts, inv.Stage, key, inv.Unit, attempt, fn)
		sf := AsFailure(err)
		if sf == nil {
			return out, err
		}
		if sf.Class == ClassTransient && attempt <= opts.TransientRetries {
			if opts.Metrics != nil {
				opts.Metrics.Add("guard.retries."+string(inv.Stage), 1)
			}
			if opts.RetryBackoff > 0 {
				time.Sleep(opts.RetryBackoff << (attempt - 1))
			}
			continue
		}
		sf.Attempts = attempt
		g.contain(opts, sf, inv.Unit, func(c *cast.Unit) bool {
			k := key
			if opts.Injector != nil && inv.Key == "" {
				k = safePrint(c)
			}
			_, rerr := runAttempt(opts, inv.Stage, k, c, 1, fn)
			rsf := AsFailure(rerr)
			return rsf != nil && rsf.Class == sf.Class
		})
		return zero, sf
	}
}

// runAttempt performs one invocation attempt: consult the injector,
// then run fn behind panic recovery and the optional deadline.
func runAttempt[T any](opts Options, stage Stage, key string, u *cast.Unit, attempt int, fn func(*cast.Unit) (T, error)) (T, error) {
	var zero T
	if inj := opts.Injector; inj != nil {
		switch f := inj.Fault(stage, key, attempt); f.Class {
		case ClassPanic:
			// Planted inside the recovered region, so injection exercises
			// the real containment path.
			out, err := protect(opts, stage, u, func(*cast.Unit) (T, error) {
				panic(detail(f, "injected stage panic"))
			})
			if sf := AsFailure(err); sf != nil {
				sf.Injected = true
			}
			return out, err
		case ClassDeadline:
			// Classified immediately rather than actually sleeping past
			// the deadline: deterministic and fast.
			return zero, &StageFailure{Stage: stage, Class: ClassDeadline,
				Injected: true, Detail: detail(f, "injected deadline overrun")}
		case ClassCorrupt:
			// The stage's output is deemed corrupted and discarded
			// without running it (running it and then discarding would be
			// equivalent but slower).
			return zero, &StageFailure{Stage: stage, Class: ClassCorrupt,
				Injected: true, Detail: detail(f, "injected output corruption")}
		case ClassTransient:
			return zero, &StageFailure{Stage: stage, Class: ClassTransient,
				Injected: true, Detail: detail(f, "injected transient fault")}
		}
	}
	return protect(opts, stage, u, fn)
}

func detail(f Fault, def string) string {
	if f.Detail != "" {
		return f.Detail
	}
	return def
}

// protect runs fn with panic recovery and, when configured, the stage
// deadline. With a deadline, fn runs on its own goroutine; on overrun
// the attempt is abandoned (the goroutine drains into a buffered
// channel and is collected when it finishes).
func protect[T any](opts Options, stage Stage, u *cast.Unit, fn func(*cast.Unit) (T, error)) (out T, err error) {
	if opts.StageDeadline <= 0 {
		defer func() {
			if r := recover(); r != nil {
				out = *new(T)
				err = PanicFailure(stage, r)
			}
		}()
		return fn(u)
	}
	type result struct {
		out T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		var r result
		defer func() {
			if p := recover(); p != nil {
				r = result{err: PanicFailure(stage, p)}
			}
			ch <- r
		}()
		r.out, r.err = fn(u)
	}()
	timer := time.NewTimer(opts.StageDeadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-timer.C:
		return out, &StageFailure{Stage: stage, Class: ClassDeadline,
			Detail: fmt.Sprintf("no result within the %s stage deadline", opts.StageDeadline)}
	}
}

// safePrint derives an injection key from a unit's canonical text; a
// printer panic during key derivation must not escape the guard, so it
// degrades to a fixed key.
func safePrint(u *cast.Unit) (s string) {
	defer func() {
		if recover() != nil {
			s = "unprintable"
		}
	}()
	return cast.Print(u)
}

// shortHash is the 12-hex content address used in quarantine filenames.
func shortHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])[:12]
}
