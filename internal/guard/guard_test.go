package guard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/obs"
)

const tinyKernel = `
int kernel(int a, int b) {
    int s = 0;
    for (int i = 0; i < a; i++) { s = s + b; }
    if (s > 100) { s = 100; }
    return s;
}
`

func tinyUnit(t *testing.T) *cast.Unit {
	t.Helper()
	u, err := cparser.Parse(tinyKernel)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// scriptedInjector faults according to a fixed script keyed on attempt
// number; attempts past the script succeed.
type scriptedInjector struct {
	script []Class
	calls  int
}

func (s *scriptedInjector) Fault(stage Stage, key string, attempt int) Fault {
	s.calls++
	if attempt <= len(s.script) && s.script[attempt-1] != "" {
		return Fault{Class: s.script[attempt-1]}
	}
	return Fault{}
}

func TestDoPassesThroughSuccessAndDomainErrors(t *testing.T) {
	g := New(Options{})
	out, err := Do(g, Invocation{Stage: StageCheck}, func(*cast.Unit) (int, error) { return 42, nil })
	if err != nil || out != 42 {
		t.Fatalf("success got (%d, %v), want (42, nil)", out, err)
	}
	domain := errors.New("diagnostic: not synthesizable")
	_, err = Do(g, Invocation{Stage: StageCheck}, func(*cast.Unit) (int, error) { return 0, domain })
	if err != domain {
		t.Fatalf("domain error got %v, want it untouched", err)
	}
	if AsFailure(err) != nil {
		t.Fatal("domain error must not classify as a StageFailure")
	}
}

func TestDoContainsPanicNilAndNonNilGuard(t *testing.T) {
	for _, g := range []*Guard{nil, New(Options{})} {
		out, err := Do(g, Invocation{Stage: StageStyle}, func(*cast.Unit) (string, error) {
			panic("stage blew up")
		})
		sf := AsFailure(err)
		if sf == nil {
			t.Fatalf("guard=%v: want a StageFailure, got %v", g, err)
		}
		if sf.Stage != StageStyle || sf.Class != ClassPanic || sf.Attempts != 1 {
			t.Errorf("guard=%v: got %+v", g, sf)
		}
		if !strings.Contains(sf.Detail, "stage blew up") {
			t.Errorf("detail lost the panic value: %q", sf.Detail)
		}
		if out != "" {
			t.Errorf("zero value expected on failure, got %q", out)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	reg := obs.NewRegistry()
	inj := &scriptedInjector{script: []Class{ClassTransient, ClassTransient}}
	g := New(Options{Injector: inj, TransientRetries: 2, Metrics: reg})
	out, err := Do(g, Invocation{Stage: StageCheck, Key: "k"}, func(*cast.Unit) (int, error) { return 7, nil })
	if err != nil || out != 7 {
		t.Fatalf("third attempt should succeed, got (%d, %v)", out, err)
	}
	if n := reg.Counter("guard.retries.check"); n != 2 {
		t.Errorf("guard.retries.check = %d, want 2", n)
	}
}

func TestDoTransientExhaustion(t *testing.T) {
	inj := &scriptedInjector{script: []Class{ClassTransient, ClassTransient, ClassTransient}}
	g := New(Options{Injector: inj, TransientRetries: 1})
	_, err := Do(g, Invocation{Stage: StageCheck, Key: "k"}, func(*cast.Unit) (int, error) { return 7, nil })
	sf := AsFailure(err)
	if sf == nil || sf.Class != ClassTransient {
		t.Fatalf("want terminal transient failure, got %v", err)
	}
	if sf.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (initial + one retry)", sf.Attempts)
	}
}

func TestDoNeverRetriesDeterministicClasses(t *testing.T) {
	for _, class := range []Class{ClassPanic, ClassDeadline, ClassCorrupt} {
		inj := &scriptedInjector{script: []Class{class}}
		g := New(Options{Injector: inj, TransientRetries: 3})
		_, err := Do(g, Invocation{Stage: StageEstimate, Key: "k"}, func(*cast.Unit) (int, error) { return 1, nil })
		sf := AsFailure(err)
		if sf == nil || sf.Class != class {
			t.Fatalf("%s: got %v", class, err)
		}
		if sf.Attempts != 1 {
			t.Errorf("%s: Attempts = %d, want 1 (no retry)", class, sf.Attempts)
		}
		if !sf.Injected {
			t.Errorf("%s: injected fault not marked Injected", class)
		}
	}
}

func TestDoEnforcesStageDeadline(t *testing.T) {
	g := New(Options{StageDeadline: 20 * time.Millisecond})
	start := time.Now()
	_, err := Do(g, Invocation{Stage: StageDifftest}, func(*cast.Unit) (int, error) {
		time.Sleep(2 * time.Second)
		return 0, nil
	})
	sf := AsFailure(err)
	if sf == nil || sf.Class != ClassDeadline {
		t.Fatalf("want deadline failure, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline did not abandon the attempt promptly (%s)", elapsed)
	}
	if sf.Injected {
		t.Error("real overrun must not be marked Injected")
	}
}

func TestDoDeadlineStillContainsPanics(t *testing.T) {
	g := New(Options{StageDeadline: time.Second})
	_, err := Do(g, Invocation{Stage: StageCheck}, func(*cast.Unit) (int, error) {
		panic("on the deadline goroutine")
	})
	sf := AsFailure(err)
	if sf == nil || sf.Class != ClassPanic {
		t.Fatalf("want contained panic, got %v", err)
	}
}

func TestQuarantineWritesMinimizedReproducer(t *testing.T) {
	dir := t.TempDir()
	var warnings []string
	g := New(Options{QuarantineDir: dir, ReduceTrials: 60,
		Warn: func(m string) { warnings = append(warnings, m) }})
	u := tinyUnit(t)

	fail := func() (*StageFailure, error) {
		_, err := Do(g, Invocation{Stage: StageStyle, Unit: u}, func(cu *cast.Unit) (bool, error) {
			// Deterministic on every reduced variant, so the reducer can
			// shrink aggressively.
			panic("style checker crash")
		})
		return AsFailure(err), err
	}

	sf, err := fail()
	if sf == nil {
		t.Fatalf("want StageFailure, got %v", err)
	}
	if sf.Reproducer == "" {
		t.Fatalf("no reproducer recorded; warnings: %v", warnings)
	}
	printed, rerr := os.ReadFile(sf.Reproducer)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(printed) == 0 {
		t.Fatal("empty reproducer")
	}
	side, rerr := os.ReadFile(strings.TrimSuffix(sf.Reproducer, ".c") + ".json")
	if rerr != nil {
		t.Fatal(rerr)
	}
	var meta struct {
		Stage       string `json:"stage"`
		Class       string `json:"class"`
		OriginalLOC int    `json:"original_loc"`
		ReducedLOC  int    `json:"reduced_loc"`
	}
	if err := json.Unmarshal(side, &meta); err != nil {
		t.Fatalf("sidecar does not parse: %v", err)
	}
	if meta.Stage != "stylecheck" || meta.Class != "panic" {
		t.Errorf("sidecar = %+v", meta)
	}
	if meta.ReducedLOC > meta.OriginalLOC {
		t.Errorf("reduction grew the input: %d -> %d", meta.OriginalLOC, meta.ReducedLOC)
	}
	if len(warnings) != 1 {
		t.Errorf("want exactly one warning for the first failure, got %v", warnings)
	}

	// Second failure of the same (stage, class): no new reproducer, no
	// new warning.
	before := countFiles(t, dir)
	if sf2, _ := fail(); sf2 == nil || sf2.Reproducer != "" {
		t.Errorf("repeat failure should not quarantine again: %+v", sf2)
	}
	if after := countFiles(t, dir); after != before {
		t.Errorf("repeat failure wrote files: %d -> %d", before, after)
	}
	if len(warnings) != 1 {
		t.Errorf("repeat failure warned again: %v", warnings)
	}
}

func TestQuarantineSkipsTransientAndRealDeadline(t *testing.T) {
	dir := t.TempDir()
	u := tinyUnit(t)

	// Transient (exhausted): environmental, never quarantined.
	inj := &scriptedInjector{script: []Class{ClassTransient, ClassTransient, ClassTransient, ClassTransient}}
	g := New(Options{QuarantineDir: dir, Injector: inj})
	_, err := Do(g, Invocation{Stage: StageCheck, Key: "k", Unit: u}, func(*cast.Unit) (int, error) { return 1, nil })
	if sf := AsFailure(err); sf == nil || sf.Reproducer != "" {
		t.Errorf("transient failure quarantined: %+v", sf)
	}

	// Real deadline: every reducer trial would run to the deadline.
	g2 := New(Options{QuarantineDir: dir, StageDeadline: 10 * time.Millisecond})
	_, err = Do(g2, Invocation{Stage: StageDifftest, Unit: u}, func(*cast.Unit) (int, error) {
		time.Sleep(300 * time.Millisecond)
		return 0, nil
	})
	if sf := AsFailure(err); sf == nil || sf.Reproducer != "" {
		t.Errorf("real deadline failure quarantined: %+v", sf)
	}
	if n := countFiles(t, dir); n != 0 {
		t.Errorf("quarantine dir has %d files, want 0", n)
	}
}

func TestFailureMetricsAndLabel(t *testing.T) {
	reg := obs.NewRegistry()
	g := New(Options{Metrics: reg})
	_, err := Do(g, Invocation{Stage: StageInterp}, func(*cast.Unit) (int, error) { panic("x") })
	sf := AsFailure(err)
	if sf.Label() != "interp/panic" {
		t.Errorf("Label = %q", sf.Label())
	}
	if n := reg.Counter("guard.failures.interp.panic"); n != 1 {
		t.Errorf("failure counter = %d, want 1", n)
	}
	if !strings.Contains(sf.Error(), "interp stage failed (panic)") {
		t.Errorf("Error() = %q", sf.Error())
	}
}

func TestNilGuardAccessors(t *testing.T) {
	var g *Guard
	if g.Injecting() {
		t.Error("nil guard reports injecting")
	}
	if g.InterpSteps() != 0 {
		t.Error("nil guard reports a step budget")
	}
	if g := New(Options{InterpSteps: 5000}); g.InterpSteps() != 5000 {
		t.Error("InterpSteps accessor lost the budget")
	}
}

func countFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestReproducerNameIsContentAddressed pins the filename convention the
// regression workflow relies on (<stage>-<class>-<12 hex>.c).
func TestReproducerNameIsContentAddressed(t *testing.T) {
	dir := t.TempDir()
	g := New(Options{QuarantineDir: dir, ReduceTrials: 20})
	u := tinyUnit(t)
	_, err := Do(g, Invocation{Stage: StageEstimate, Unit: u}, func(*cast.Unit) (int, error) {
		panic("estimate crash")
	})
	sf := AsFailure(err)
	if sf == nil || sf.Reproducer == "" {
		t.Fatalf("no reproducer: %v", err)
	}
	base := filepath.Base(sf.Reproducer)
	var hash string
	if _, err := fmt.Sscanf(base, "estimate-panic-%s", &hash); err != nil || !strings.HasSuffix(hash, ".c") || len(hash) != len("123456789abc.c") {
		t.Errorf("unexpected reproducer name %q", base)
	}
}
