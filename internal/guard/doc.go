// Package guard is the failure-containment layer of the pipeline: every
// expensive toolchain stage invocation — parse, print, style check, full
// synthesizability check, resource estimation, differential test, and
// raw interpreter execution — runs behind Do, which converts panic
// escapes, deadline overruns, and injected faults into a typed
// StageFailure instead of letting one bad candidate take the whole
// process down.
//
// The paper's repair loop (§5) evaluates hundreds of mutated candidate
// ASTs per search; at production scale (ROADMAP north star) a candidate
// that crashes a stage must become a *rejected candidate with a recorded
// reason*, not an abort. Guard supplies the mechanism; the repair and
// fuzz engines own the policy (reject, count, emit at commit time so
// traces stay byte-identical for any Workers value — see
// internal/repair/parallel.go for the commit-in-order contract).
//
// Failure classes and retry policy:
//
//   - panic:     a deterministic crash of the stage. Never retried —
//     rerunning a pure function on the same input cannot help.
//   - deadline:  the stage exceeded Options.StageDeadline (or an
//     injected overrun). Never retried.
//   - corrupt:   the stage's output failed validation (only ever
//     injected today; real validators can adopt the class). Never
//     retried.
//   - transient: an environmental fault (I/O flake). Retried up to
//     Options.TransientRetries with exponential backoff, because a rerun
//     genuinely can succeed.
//
// Deterministic failures on quarantinable inputs are minimized with
// progen.Reduce and written under Options.QuarantineDir as committable
// reproducers (once per (stage, class) per Guard — see quarantine.go).
//
// Determinism: Do runs on worker goroutines, so it never emits trace
// events — callers surface failures at commit time. It does count into
// the metrics registry (guard.failures.<stage>.<class>, guard.retries,
// guard.quarantined), which — like cache hit counts — may legitimately
// vary with Workers (speculative evaluations past an accepted candidate
// are guarded too); the committed failure counts in traces and Stats do
// not.
//
// A nil *Guard is valid everywhere and behaves as a zero-options guard:
// containment on, no deadline, no injection, no quarantine — so call
// sites never branch on whether guarding is configured.
package guard
