// Package interp implements a tree-walking interpreter for the C/HLS-C
// subset. It provides the three execution services HeteroGen depends on:
//
//   - CPU-semantics execution of the original C program (unbounded heap,
//     native recursion) with branch-coverage instrumentation — the fuzzing
//     and differential-testing reference.
//   - Value-range profiling of integer variables, feeding the bitwidth
//     finitization that produces the initial HLS version.
//   - FPGA-semantics execution (bit-width-wrapped arithmetic, bounded
//     stack, no dynamic allocation) used by the HLS simulator, which
//     layers a pragma-aware cycle model on top via hooks.
package interp

import (
	"fmt"
	"math"
	"strings"

	"github.com/hetero/heterogen/internal/ctypes"
)

// ValueKind discriminates runtime values.
type ValueKind int

// Runtime value kinds.
const (
	VInt ValueKind = iota
	VFloat
	VPtr
	VStruct
	VStream
	VVoid
)

// Value is a runtime value. Ints carry their declared width/signedness so
// FPGA mode can wrap them; pointers reference an Object plus an element
// offset; structs carry their field values in declaration order.
type Value struct {
	Kind     ValueKind
	Int      int64
	Float    float64
	Width    int  // integer bit width (32 default, N for fpga_int<N>)
	Unsigned bool // integer signedness
	FloatSyn bool // float value held in a synthesizable (custom) float type

	Obj *Object // pointer target (nil pointer when Obj == nil)
	Off int     // pointer element offset

	Struct *ctypes.Struct // struct type for VStruct
	Fields []Value        // struct field values

	Stream *StreamObj
}

// Object is a storage cell: every variable, array, and heap allocation is
// one Object holding one or more element slots.
type Object struct {
	Name  string // diagnostic name
	Elems []Value
	Elem  ctypes.Type // element type
	Freed bool
}

// StreamObj is the runtime representation of hls::stream<T>, a FIFO.
type StreamObj struct {
	Name string
	Q    []Value
	// Pushes counts total writes over the stream's lifetime (used by the
	// cycle model to account channel traffic).
	Pushes int
}

// IntValue constructs a C int value.
func IntValue(v int64) Value { return Value{Kind: VInt, Int: v, Width: 32} }

// FloatValue constructs a C double value.
func FloatValue(v float64) Value { return Value{Kind: VFloat, Float: v} }

// BoolValue renders a Go bool as a C int 0/1.
func BoolValue(b bool) Value {
	if b {
		return IntValue(1)
	}
	return IntValue(0)
}

// IsZero reports whether the value is zero/null in the C sense.
func (v Value) IsZero() bool {
	switch v.Kind {
	case VInt:
		return v.Int == 0
	case VFloat:
		return v.Float == 0
	case VPtr:
		return v.Obj == nil
	}
	return false
}

// Truthy is the C truth test.
func (v Value) Truthy() bool { return !v.IsZero() }

// AsFloat converts to float64 following C conversion rules.
func (v Value) AsFloat() float64 {
	if v.Kind == VFloat {
		return v.Float
	}
	if v.Kind == VInt {
		if v.Unsigned {
			return float64(uint64(v.Int))
		}
		return float64(v.Int)
	}
	return 0
}

// AsInt converts to int64 following C conversion rules (trunc for floats).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case VInt:
		return v.Int
	case VFloat:
		return int64(v.Float)
	}
	return 0
}

// String renders the value for diagnostics and output comparison.
func (v Value) String() string {
	switch v.Kind {
	case VInt:
		if v.Unsigned {
			return fmt.Sprintf("%d", uint64(v.Int)&maskFor(v.Width))
		}
		return fmt.Sprintf("%d", v.Int)
	case VFloat:
		return fmt.Sprintf("%g", v.Float)
	case VPtr:
		if v.Obj == nil {
			return "null"
		}
		return fmt.Sprintf("&%s+%d", v.Obj.Name, v.Off)
	case VStruct:
		parts := make([]string, len(v.Fields))
		for i, f := range v.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case VStream:
		return fmt.Sprintf("stream(len=%d)", len(v.Stream.Q))
	}
	return "void"
}

// DeepCopy copies a value so that struct assignment has C value semantics.
// Pointers and streams copy shallowly (reference semantics), as in C/HLS.
func (v Value) DeepCopy() Value {
	if v.Kind == VStruct {
		out := v
		out.Fields = make([]Value, len(v.Fields))
		for i, f := range v.Fields {
			out.Fields[i] = f.DeepCopy()
		}
		return out
	}
	return v
}

// Equal compares two values for differential testing. Floats compare with
// a relative tolerance: HLS float conversions legitimately reduce
// precision, and the paper's oracle is "identical input-output behaviour"
// at the precision of the narrower machine.
func Equal(a, b Value, tol float64) bool {
	if a.Kind == VFloat || b.Kind == VFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		// Non-finite values compare by identity: both sides producing
		// NaN (or the same-signed infinity) is behavioural agreement;
		// non-finite against anything else is divergence. The
		// relative-tolerance formula cannot express this — with an
		// infinite operand both diff and bound are +Inf (calling +Inf
		// equal to every finite number), and with NaN every comparison
		// is false (calling NaN unequal even to itself).
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		if math.IsInf(af, 0) || math.IsInf(bf, 0) {
			return af == bf
		}
		diff := math.Abs(af - bf)
		mag := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= tol*(1+mag)
	}
	switch a.Kind {
	case VInt:
		return b.Kind == VInt && a.AsInt() == b.AsInt()
	case VPtr:
		return b.Kind == VPtr && a.Obj == b.Obj && a.Off == b.Off
	case VStruct:
		if b.Kind != VStruct || len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if !Equal(a.Fields[i], b.Fields[i], tol) {
				return false
			}
		}
		return true
	case VVoid:
		return b.Kind == VVoid
	}
	return false
}

func maskFor(width int) uint64 {
	if width <= 0 || width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// WrapInt applies two's-complement wrapping to width bits, the semantics
// of fpga_int<N>/fpga_uint<N> on the fabric.
func WrapInt(v int64, width int, unsigned bool) int64 {
	if width <= 0 || width >= 64 {
		return v
	}
	m := maskFor(width)
	u := uint64(v) & m
	if unsigned {
		return int64(u)
	}
	// Sign extend.
	sign := uint64(1) << uint(width-1)
	if u&sign != 0 {
		u |= ^m
	}
	return int64(u)
}

// ZeroValue builds the zero value of a type; arrays are represented as
// whole Objects, so asking for an array zero yields a null pointer (array
// storage is created by the declaration site, not here).
func ZeroValue(t ctypes.Type) Value {
	switch u := ctypes.Resolve(t).(type) {
	case ctypes.Int:
		return Value{Kind: VInt, Width: u.Width, Unsigned: u.Unsigned}
	case ctypes.FPGAInt:
		return Value{Kind: VInt, Width: u.Width, Unsigned: u.Unsigned}
	case ctypes.Bool:
		return Value{Kind: VInt, Width: 1, Unsigned: true}
	case ctypes.Float:
		return Value{Kind: VFloat}
	case ctypes.FPGAFloat:
		return Value{Kind: VFloat, FloatSyn: true}
	case ctypes.Pointer:
		return Value{Kind: VPtr}
	case *ctypes.Struct:
		fields := make([]Value, len(u.Fields))
		for i, f := range u.Fields {
			fields[i] = ZeroValue(f.Type)
		}
		return Value{Kind: VStruct, Struct: u, Fields: fields}
	case ctypes.Stream:
		return Value{Kind: VStream, Stream: &StreamObj{}}
	case ctypes.Array:
		// Handled by declaration; a bare array value decays to null.
		return Value{Kind: VPtr}
	}
	return Value{Kind: VVoid}
}
