package interp_test

// Differential-testing belt for the compiled fast path: every generated
// program runs twice — once on the tree walker, once with Options.Code
// set — and the two executions must agree on everything observable:
// return value (exact bits), mutated argument arrays (exact bits), cost,
// raw step count, printed output, coverage bitmap, value-range profiles,
// error message text and position, and step-budget classification. The
// sweep covers clean and fault-injected progen programs, CPU and FPGA
// modes, and a tight step budget that forces mid-execution cutoffs.
//
// By default the belt runs a 200-seed slice (fast enough for `make
// check`); setting INTERP_DIFF=1 widens it to the full 2000-seed sweep
// used by the `interp-diff-smoke` CI job.

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/progen"
)

const diffDefaultSeeds = 200
const diffFullSeeds = 2000

func diffSeedCount() int {
	if os.Getenv("INTERP_DIFF") != "" {
		return diffFullSeeds
	}
	return diffDefaultSeeds
}

// diffCase fills a kernel's argument prototypes deterministically from
// the seed. Float payloads include NaN and both infinities so the belt
// exercises interp.Equal's non-finite identity rules and the walkers'
// NaN propagation; integer payloads are wrapped to their declared width.
func diffCase(sp fuzz.Spec, seed int64) fuzz.TestCase {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	tc := fuzz.TestCase{Args: make([]fuzz.Arg, len(sp.Params))}
	for i, p := range sp.Params {
		a := p.Clone()
		if a.IsFloat {
			for j := range a.Floats {
				switch rng.Intn(12) {
				case 0:
					a.Floats[j] = math.NaN()
				case 1:
					a.Floats[j] = math.Inf(1)
				case 2:
					a.Floats[j] = math.Inf(-1)
				case 3:
					a.Floats[j] = 0
				default:
					a.Floats[j] = rng.NormFloat64() * 100
				}
			}
		} else {
			for j := range a.Ints {
				v := rng.Int63n(1 << 16)
				if rng.Intn(2) == 0 {
					v = -v
				}
				a.Ints[j] = interp.WrapInt(v, a.Width, a.Unsigned)
			}
		}
		tc.Args[i] = a
	}
	return tc
}

func diffValueBits(v interp.Value) string {
	switch v.Kind {
	case interp.VInt:
		return fmt.Sprintf("i%d/w%d/u%v", v.Int, v.Width, v.Unsigned)
	case interp.VFloat:
		return fmt.Sprintf("f%016x/syn%v", math.Float64bits(v.Float), v.FloatSyn)
	case interp.VPtr:
		if v.Obj == nil {
			return "nullptr"
		}
		return fmt.Sprintf("ptr+%d", v.Off)
	case interp.VStruct:
		parts := make([]string, len(v.Fields))
		for i, f := range v.Fields {
			parts[i] = diffValueBits(f)
		}
		return "struct{" + strings.Join(parts, ",") + "}"
	case interp.VVoid:
		return "void"
	}
	return "?" + v.String()
}

// diffOutcome renders one execution as a canonical string so that a
// divergence shows up as a plain text diff in the failure message.
func diffOutcome(u *progen.Program, tc fuzz.TestCase, opts interp.Options) string {
	in, err := interp.New(u.Unit, opts)
	if err != nil {
		return "new-error: " + err.Error()
	}
	vals := tc.Values()
	res, err := in.CallKernel(u.Kernel, vals)
	var sb strings.Builder
	if err != nil {
		fmt.Fprintf(&sb, "err=%q budget=%v\n", err.Error(), interp.IsBudget(err))
	}
	fmt.Fprintf(&sb, "ret=%s cost=%d steps=%d\n", diffValueBits(res.Ret), res.Cost, res.Steps)
	fmt.Fprintf(&sb, "output=%q\n", res.Output)
	for i, v := range vals {
		if v.Kind == interp.VPtr && v.Obj != nil {
			fmt.Fprintf(&sb, "arg%d=", i)
			for _, e := range v.Obj.Elems {
				sb.WriteString(diffValueBits(e))
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		} else {
			fmt.Fprintf(&sb, "arg%d=%s\n", i, diffValueBits(v))
		}
	}
	sb.WriteString("cov=")
	for _, b := range in.CoverageBits {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteByte('\n')
	keys := make([]string, 0, len(in.Profiles))
	for k := range in.Profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := in.Profiles[k]
		fmt.Fprintf(&sb, "profile %s=[%d,%d,%v]\n", k, r.Min, r.Max, r.Seen)
	}
	return sb.String()
}

// TestDiffVMAgainstTree is the belt itself: tree walker vs compiled code
// over generated programs, in both modes, with and without a starved
// step budget, requiring byte-identical outcomes.
func TestDiffVMAgainstTree(t *testing.T) {
	n := diffSeedCount()
	code := interp.NewCodebase()
	divergences := 0
	for seed := 0; seed < n; seed++ {
		prog, err := progen.Generate(progen.Options{Seed: int64(seed), Clean: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: progen: %v", seed, err)
		}
		sp, err := fuzz.SpecOf(prog.Unit, prog.Kernel)
		if err != nil {
			t.Fatalf("seed %d: spec: %v", seed, err)
		}
		tc := diffCase(sp, int64(seed))
		for _, mode := range []interp.Mode{interp.CPU, interp.FPGA} {
			for _, maxSteps := range []int64{0, 2500} {
				opts := interp.Options{Mode: mode, Coverage: true, Profile: true, MaxSteps: maxSteps}
				want := diffOutcome(&prog, tc, opts)
				opts.Code = code
				got := diffOutcome(&prog, tc, opts)
				if want != got {
					divergences++
					t.Errorf("seed %d mode=%v maxSteps=%d clean=%v diverged:\n--- tree ---\n%s--- compiled ---\n%s",
						seed, mode, maxSteps, seed%2 == 0, want, got)
					if divergences >= 10 {
						t.Fatalf("stopping after %d divergences", divergences)
					}
				}
			}
		}
	}
	if code.Size() == 0 {
		t.Fatal("compiled-code cache is empty: the fast path never engaged")
	}
	t.Logf("diff belt: %d seeds, %d compiled functions (%d fallbacks), %d divergences",
		n, code.Size(), code.Fallbacks(), divergences)
}

// TestDiffEqualVerdicts pins the paper's differential-comparison rule on
// the two paths: when both executions of the same program succeed, their
// return values must satisfy interp.Equal under the differential-testing
// tolerance — including the NaN==NaN and same-signed-infinity identity
// cases that exact bit equality already implies.
func TestDiffEqualVerdicts(t *testing.T) {
	code := interp.NewCodebase()
	for seed := 0; seed < 64; seed++ {
		prog := progen.MustGenerate(progen.Options{Seed: int64(seed), Clean: true})
		sp, err := fuzz.SpecOf(prog.Unit, prog.Kernel)
		if err != nil {
			t.Fatalf("seed %d: spec: %v", seed, err)
		}
		tc := diffCase(sp, int64(seed)+7777)
		treeIn, err := interp.New(prog.Unit, interp.Options{})
		if err != nil {
			t.Fatalf("seed %d: new: %v", seed, err)
		}
		vmIn, err := interp.New(prog.Unit, interp.Options{Code: code})
		if err != nil {
			t.Fatalf("seed %d: new vm: %v", seed, err)
		}
		treeRes, treeErr := treeIn.CallKernel(prog.Kernel, tc.Values())
		vmRes, vmErr := vmIn.CallKernel(prog.Kernel, tc.Values())
		if (treeErr == nil) != (vmErr == nil) {
			t.Fatalf("seed %d: error parity: tree=%v vm=%v", seed, treeErr, vmErr)
		}
		if treeErr != nil {
			if treeErr.Error() != vmErr.Error() {
				t.Fatalf("seed %d: error text: tree=%q vm=%q", seed, treeErr, vmErr)
			}
			continue
		}
		if !interp.Equal(treeRes.Ret, vmRes.Ret, 1e-6) {
			t.Fatalf("seed %d: Equal verdict false: tree=%s vm=%s", seed, treeRes.Ret, vmRes.Ret)
		}
	}
}
