package interp

import "github.com/hetero/heterogen/internal/ctoken"

// Cost units model execution latency. In CPU mode a unit is one pipeline
// slot of a superscalar core; in FPGA mode a unit is one fabric cycle.
// The two modes convert to wall-clock time with different clocks (see
// CPUTimeMS / FPGATimeMS), which is how the simulator reproduces the
// paper's performance shape: the fabric clock is ~9x slower, so FPGA
// versions only win by exploiting pragma-driven parallelism.
const (
	costIAdd         = 1
	costIMul         = 3
	costIDiv         = 16
	costFAdd         = 4
	costFMul         = 5
	costFDiv         = 20
	costLoad         = 2
	costStore        = 2
	costBranch       = 1
	costCall         = 5
	costReturn       = 2
	costStream       = 2
	costLoopOverhead = 2
)

// addCost accumulates cost units.
func (in *Interp) addCost(n int64) {
	in.cost += n
	in.rawCost += n
}

// KernelSpeedupCap bounds the end-to-end acceleration the cycle model may
// claim for one kernel invocation: pragmas buy loop-level parallelism,
// but fabric resources, memory bandwidth, and the sequential fraction
// bound the whole-kernel effect (an Amdahl guard against nested-loop
// speedups compounding without limit). With the CPU at 2.2GHz and the
// fabric at 250MHz, a cap of 24 bounds the end-to-end CPU-vs-FPGA
// speedup near 2.7x — the regime the paper's Table 5 reports.
const KernelSpeedupCap = 24

func costForIntOp(op ctoken.Kind) int64 {
	switch op {
	case ctoken.MUL:
		return costIMul
	case ctoken.QUO, ctoken.REM:
		return costIDiv
	}
	return costIAdd
}

func costForFloatOp(op ctoken.Kind) int64 {
	switch op {
	case ctoken.MUL:
		return costFMul
	case ctoken.QUO:
		return costFDiv
	}
	return costFAdd
}

// Clock rates for converting cost units to time.
const (
	// CPUGHz approximates the evaluation machine's i7-8750H.
	CPUGHz = 2.2
	// FPGAMHz approximates a Virtex UltraScale+ kernel clock.
	FPGAMHz = 250.0
	// FPGAInvokeOverheadUS is the fixed host<->fabric communication cost
	// per kernel invocation, in microseconds (DMA setup for a small
	// buffer over PCIe).
	FPGAInvokeOverheadUS = 3.0
)

// CPUTimeMS converts CPU cost units to milliseconds.
func CPUTimeMS(cost int64) float64 {
	return float64(cost) / (CPUGHz * 1e6)
}

// FPGATimeMS converts FPGA cycles to milliseconds including one kernel
// invocation overhead.
func FPGATimeMS(cycles int64) float64 {
	return float64(cycles)/(FPGAMHz*1e3) + FPGAInvokeOverheadUS/1e3
}
