package interp

import (
	"strconv"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
)

// control reports whether a break/continue unwound out of a statement.
type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
)

// execBlock executes statements in a fresh scope.
func (in *Interp) execBlock(b *cast.Block) control {
	fr := in.top()
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		if c := in.execStmt(s); c != ctlNone || fr.returned {
			return c
		}
	}
	return ctlNone
}

// execDataflowBody executes a function body under #pragma HLS dataflow:
// semantics are unchanged, but the cycle accounting of its top-level call
// statements is overlapped (max instead of sum), the fabric's task-level
// pipelining.
func (in *Interp) execDataflowBody(b *cast.Block) {
	fr := in.top()
	fr.push()
	defer fr.pop()
	// Call statements overlap: only the longest contributes. Everything
	// else keeps its sequential cost.
	var maxCall int64
	for _, s := range b.Stmts {
		before := in.cost
		c := in.execStmt(s)
		if isCallStmt(s) {
			delta := in.cost - before
			in.cost = before
			if delta > maxCall {
				maxCall = delta
			}
		}
		if c != ctlNone || fr.returned {
			break
		}
	}
	in.cost += maxCall
}

func isCallStmt(s cast.Stmt) bool {
	es, ok := s.(*cast.ExprStmt)
	if !ok {
		return false
	}
	_, isCall := es.X.(*cast.Call)
	return isCall
}

func (in *Interp) execStmt(s cast.Stmt) control {
	in.step(s.Pos())
	switch x := s.(type) {
	case *cast.ExprStmt:
		in.eval(x.X)
		return ctlNone
	case *cast.DeclStmt:
		in.execDecl(x)
		return ctlNone
	case *cast.Block:
		return in.execBlock(x)
	case *cast.If:
		in.addCost(costBranch)
		cond := in.eval(x.Cond).Truthy()
		in.recordBranch(x.BranchID, cond)
		if cond {
			return in.execStmt(x.Then)
		}
		if x.Else != nil {
			return in.execStmt(x.Else)
		}
		return ctlNone
	case *cast.For:
		return in.execFor(x)
	case *cast.While:
		return in.execWhile(x)
	case *cast.Return:
		fr := in.top()
		if x.X != nil {
			fr.retVal = in.eval(x.X)
		}
		fr.returned = true
		in.addCost(costReturn)
		return ctlNone
	case *cast.Break:
		return ctlBreak
	case *cast.Continue:
		return ctlContinue
	case *cast.Switch:
		return in.execSwitch(x)
	case *cast.Pragma:
		// Free-standing pragma inside a body: record array partitions.
		in.notePartition(x.Text)
		return ctlNone
	case *cast.Label:
		return ctlNone
	case *cast.Goto:
		in.fail(x.P, "goto is not supported by the interpreter")
	}
	return ctlNone
}

func (in *Interp) execDecl(d *cast.DeclStmt) {
	fr := in.top()
	// Statics keep one storage per declaration site, keyed by name within
	// the function; a simple emulation sufficient for the subset.
	if d.Static {
		key := fr.fn + ".static." + d.Name
		if g, ok := in.globals[key]; ok {
			fr.define(d.Name, g)
			return
		}
		b := in.makeStorage(d.Name, d.Type, d.Init, true)
		in.globals[key] = b
		fr.define(d.Name, b)
		return
	}
	typ := d.Type
	if len(d.VLADims) > 0 && in.opts.Mode == CPU {
		// Variable-length array: evaluate runtime dimensions (software
		// semantics only; the fabric has no VLAs).
		typ = in.concretizeVLA(d)
	}
	b := in.makeStorage(d.Name, typ, d.Init, false)
	fr.define(d.Name, b)
	if in.opts.Profile && b.isLV {
		if v := b.lv.load(); v.Kind == VInt {
			in.noteProfile(fr.fn, d.Name, v.Int)
		}
	}
	in.addCost(costStore)
}

// concretizeVLA resolves a VLA declaration's unknown dimensions by
// evaluating their runtime expressions.
func (in *Interp) concretizeVLA(d *cast.DeclStmt) ctypes.Type {
	dims := make([]int, 0, len(d.VLADims))
	for _, e := range d.VLADims {
		n := in.eval(e).AsInt()
		if n < 0 || n > 1<<22 {
			in.fail(d.P, "invalid VLA dimension %d for %q", n, d.Name)
		}
		dims = append(dims, int(n))
	}
	next := 0
	var fill func(t ctypes.Type) ctypes.Type
	fill = func(t ctypes.Type) ctypes.Type {
		a, ok := t.(ctypes.Array)
		if !ok {
			return t
		}
		ln := a.Len
		if ln < 0 && next < len(dims) {
			ln = dims[next]
			next++
		}
		return ctypes.Array{Elem: fill(a.Elem), Len: ln}
	}
	return fill(d.Type)
}

func (in *Interp) execFor(f *cast.For) control {
	fr := in.top()
	fr.push()
	defer fr.pop()
	if f.Init != nil {
		in.execStmt(f.Init)
	}
	startCost := in.cost
	iterations := int64(0)
	for {
		in.step(f.P)
		cond := true
		if f.Cond != nil {
			in.addCost(costBranch)
			cond = in.eval(f.Cond).Truthy()
		}
		in.recordBranch(f.BranchID, cond)
		if !cond {
			break
		}
		iterations++
		c := in.execStmt(f.Body)
		if fr.returned || c == ctlBreak {
			if c == ctlBreak {
				c = ctlNone
			}
			in.scaleLoopCost(startCost, iterations, 1, f.Pragmas, f.Body)
			return ctlNone
		}
		if f.Post != nil {
			in.eval(f.Post)
		}
	}
	in.scaleLoopCost(startCost, iterations, 1, f.Pragmas, f.Body)
	return ctlNone
}

func (in *Interp) execWhile(w *cast.While) control {
	fr := in.top()
	startCost := in.cost
	first := true
	iterations := int64(0)
	for {
		in.step(w.P)
		if !w.DoWhile || !first {
			in.addCost(costBranch)
			cond := in.eval(w.Cond).Truthy()
			in.recordBranch(w.BranchID, cond)
			if !cond {
				break
			}
		}
		iterations++
		c := in.execStmt(w.Body)
		if fr.returned || c == ctlBreak {
			break
		}
		if w.DoWhile && first {
			// Condition of a do-while runs after the first body pass.
			in.addCost(costBranch)
			cond := in.eval(w.Cond).Truthy()
			in.recordBranch(w.BranchID, cond)
			if !cond {
				break
			}
		}
		first = false
	}
	// While loops carry loop-borne dependences more often than counted
	// loops; the pipeline model charges them a higher initiation interval.
	in.scaleLoopCost(startCost, iterations, whileMinII, w.Pragmas, w.Body)
	return ctlNone
}

func (in *Interp) execSwitch(sw *cast.Switch) control {
	v := in.eval(sw.X).AsInt()
	in.addCost(costBranch)
	matched := -1
	for i, c := range sw.Cases {
		if c.IsDefault {
			continue
		}
		if in.eval(c.Value).AsInt() == v {
			matched = i
			break
		}
	}
	if matched < 0 {
		for i, c := range sw.Cases {
			if c.IsDefault {
				matched = i
				break
			}
		}
	}
	if matched < 0 {
		return ctlNone
	}
	in.recordBranch(sw.BranchID+matched, true)
	fr := in.top()
	// Execute from the matched arm with C fall-through semantics.
	for i := matched; i < len(sw.Cases); i++ {
		for _, s := range sw.Cases[i].Body {
			c := in.execStmt(s)
			if fr.returned {
				return ctlNone
			}
			if c == ctlBreak {
				return ctlNone
			}
			if c == ctlContinue {
				return ctlContinue
			}
		}
	}
	return ctlNone
}

// ---------------------------------------------------------------------------
// FPGA cycle scaling for pragmas

// Cycle-model constants for pragma-driven loop acceleration.
const (
	// pipelineDepth is the fill/flush latency of a pipelined loop.
	pipelineDepth = 12
	// maxLoopSpeedup caps the combined benefit of pipelining + unrolling
	// one loop (resource- and port-limited in practice).
	maxLoopSpeedup = 64
	// whileMinII is the initiation interval floor for while loops, whose
	// exit condition usually carries a loop dependence.
	whileMinII = 2
)

// scaleLoopCost rescales the cycles consumed by a finished loop according
// to its HLS pragmas (FPGA mode only):
//
//   - pipeline II=n retires one iteration every n cycles once the pipeline
//     fills, so the loop costs about iterations*n/unroll + depth instead
//     of iterations * bodyCycles;
//   - unroll factor F divides the iteration count, bounded by the memory
//     ports available (2 per partition bank of the arrays the body
//     touches);
//   - the combined speedup is capped at maxLoopSpeedup.
func (in *Interp) scaleLoopCost(startCost, iterations int64, minII int, pragmas []*cast.Pragma, body cast.Stmt) {
	if in.opts.Mode != FPGA || len(pragmas) == 0 || iterations <= 0 {
		return
	}
	delta := in.cost - startCost
	if delta <= 0 {
		return
	}
	pipelined := false
	ii := minII
	unroll := 1
	for _, p := range pragmas {
		d := ParsePragma(p.Text)
		switch d.Kind {
		case PragmaPipeline:
			pipelined = true
			if d.Factor > ii {
				ii = d.Factor
			}
		case PragmaUnroll:
			f := d.Factor
			if f <= 0 {
				f = 8 // full unroll default benefit
			}
			ports := 2 * in.maxPartitionOf(body)
			if f > ports {
				f = ports
			}
			if f > unroll {
				unroll = f
			}
		}
	}
	scaled := delta
	if unroll > 1 {
		scaled = delta / int64(unroll)
	}
	if pipelined {
		// II cycles per (unroll-group of) iteration(s), plus fill/flush.
		piped := iterations*int64(ii)/int64(unroll) + pipelineDepth
		if piped < scaled {
			scaled = piped
		}
	}
	if floor := delta / maxLoopSpeedup; scaled < floor {
		scaled = floor
	}
	if scaled >= delta {
		return
	}
	in.cost = startCost + scaled + costLoopOverhead
}

// maxPartitionOf returns the largest partition factor among arrays
// referenced in the loop body (1 when none are partitioned).
func (in *Interp) maxPartitionOf(body cast.Stmt) int {
	max := 1
	cast.Inspect(body, func(n cast.Node) bool {
		if ix, ok := n.(*cast.Index); ok {
			if id, ok := ix.X.(*cast.Ident); ok {
				if f, ok := in.partitions[id.Name]; ok && f > max {
					max = f
				}
			}
		}
		return true
	})
	return max
}

// partitionBanks derives the effective bank count of a partition
// directive: the factor for cyclic/block partitions, or "fully
// registered" for type=complete.
func partitionBanks(d PragmaDirective) int {
	if d.PartitionType == "complete" {
		return 64 // every element independently addressable
	}
	if d.Factor <= 0 {
		return 4
	}
	return d.Factor
}

// notePartition records an array_partition pragma's banking.
func (in *Interp) notePartition(text string) {
	d := ParsePragma(text)
	if d.Kind == PragmaArrayPartition && d.Variable != "" {
		in.setPartition(d.Variable, partitionBanks(d))
	}
}

// setPartition records one array's banking, copying the partition map
// first when it is the shared compile-time map of a compiledFunc (the
// compiled partitions are cached per function and shared across frames
// and interpreters, so runtime pragmas must never write through).
func (in *Interp) setPartition(name string, banks int) {
	if in.partitionsShared {
		m := make(map[string]int, len(in.partitions)+1)
		for k, v := range in.partitions {
			m[k] = v
		}
		in.partitions = m
		in.partitionsShared = false
	}
	in.partitions[name] = banks
}

// gatherPartitions collects array_partition pragmas at a function's head.
func gatherPartitions(fn *cast.FuncDecl) map[string]int {
	out := map[string]int{}
	for _, p := range fn.Pragmas {
		d := ParsePragma(p.Text)
		if d.Kind == PragmaArrayPartition && d.Variable != "" {
			out[d.Variable] = partitionBanks(d)
		}
	}
	return out
}

// hasDataflow reports whether the function carries #pragma HLS dataflow.
func hasDataflow(fn *cast.FuncDecl) bool {
	for _, p := range fn.Pragmas {
		if ParsePragma(p.Text).Kind == PragmaDataflow {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Pragma parsing (shared with the HLS checker via this package)

// PragmaKind classifies an HLS pragma directive.
type PragmaKind int

// HLS pragma kinds.
const (
	PragmaUnknown PragmaKind = iota
	PragmaUnroll
	PragmaPipeline
	PragmaDataflow
	PragmaArrayPartition
	PragmaInterface
	PragmaInline
	PragmaTop
	PragmaStream
)

// PragmaDirective is a parsed "#pragma HLS ..." line.
type PragmaDirective struct {
	Kind     PragmaKind
	Raw      string
	Factor   int    // unroll/partition factor, II for pipeline
	Variable string // variable= operand
	IsHLS    bool
	Name     string // interface/top name operands
	// PartitionType is the array_partition type= operand: "cyclic"
	// (default), "block", or "complete" (full registerization — every
	// element gets its own ports).
	PartitionType string
}

// ParsePragma parses the text after "#pragma".
func ParsePragma(text string) PragmaDirective {
	d := PragmaDirective{Raw: text}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return d
	}
	if !strings.EqualFold(fields[0], "HLS") {
		return d
	}
	d.IsHLS = true
	if len(fields) < 2 {
		return d
	}
	switch strings.ToLower(fields[1]) {
	case "unroll":
		d.Kind = PragmaUnroll
	case "pipeline":
		d.Kind = PragmaPipeline
	case "dataflow":
		d.Kind = PragmaDataflow
	case "array_partition":
		d.Kind = PragmaArrayPartition
	case "interface":
		d.Kind = PragmaInterface
	case "inline":
		d.Kind = PragmaInline
	case "top":
		d.Kind = PragmaTop
	case "stream":
		d.Kind = PragmaStream
	}
	for _, f := range fields[2:] {
		if eq := strings.IndexByte(f, '='); eq > 0 {
			key := strings.ToLower(f[:eq])
			val := f[eq+1:]
			switch key {
			case "factor", "ii":
				if n, err := strconv.Atoi(val); err == nil {
					d.Factor = n
				}
			case "variable":
				d.Variable = val
			case "name":
				d.Name = val
			case "type":
				d.PartitionType = val
			}
		}
	}
	return d
}
