package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/ctypes"
)

// run parses src and calls fn with the given int arguments, failing the
// test on any error.
func run(t *testing.T, src, fn string, args ...int64) Value {
	t.Helper()
	u := cparser.MustParse(src)
	in, err := New(u, Options{})
	if err != nil {
		t.Fatalf("init: %v", err)
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = IntValue(a)
	}
	res, err := in.CallKernel(fn, vals)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Ret
}

func TestArithmetic(t *testing.T) {
	src := `int f(int a, int b) { return a * b + a - b / 2; }`
	if got := run(t, src, "f", 7, 4).AsInt(); got != 33 {
		t.Errorf("got %d", got)
	}
}

func TestControlFlowSemantics(t *testing.T) {
	src := `
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}`
	if got := run(t, src, "collatz", 27).AsInt(); got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
}

func TestForLoopAndArrays(t *testing.T) {
	src := `
int sumsq(int n) {
    int a[100];
    for (int i = 0; i < n; i++) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}`
	if got := run(t, src, "sumsq", 10).AsInt(); got != 285 {
		t.Errorf("got %d, want 285", got)
	}
}

func TestMultiDimensionalArrays(t *testing.T) {
	src := `
int mm() {
    int a[2][3];
    int k = 0;
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 3; j++) { a[i][j] = k; k++; }
    }
    return a[1][2] * 10 + a[0][1];
}`
	if got := run(t, src, "mm").AsInt(); got != 51 {
		t.Errorf("got %d, want 51", got)
	}
}

func TestPointersAndMalloc(t *testing.T) {
	src := `
struct Node { int val; struct Node *next; };
int f(int n) {
    struct Node *head = 0;
    for (int i = 0; i < n; i++) {
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = i;
        nn->next = head;
        head = nn;
    }
    int s = 0;
    struct Node *p = head;
    while (p != 0) { s += p->val; p = p->next; }
    return s;
}`
	if got := run(t, src, "f", 10).AsInt(); got != 45 {
		t.Errorf("got %d, want 45", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}`
	if got := run(t, src, "fib", 15).AsInt(); got != 610 {
		t.Errorf("fib(15) = %d", got)
	}
}

func TestBinaryTreeRecursion(t *testing.T) {
	src := `
struct Node { int val; struct Node *left; struct Node *right; };
struct Node *insert(struct Node *root, int v) {
    if (root == 0) {
        struct Node *n = (struct Node *)malloc(sizeof(struct Node));
        n->val = v;
        n->left = 0;
        n->right = 0;
        return n;
    }
    if (v < root->val) { root->left = insert(root->left, v); }
    else { root->right = insert(root->right, v); }
    return root;
}
int sum(struct Node *root) {
    if (root == 0) { return 0; }
    return root->val + sum(root->left) + sum(root->right);
}
int kernel(int n) {
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        root = insert(root, (i * 37) % 101);
    }
    return sum(root);
}`
	// sum of (i*37)%101 for i in 0..19
	want := int64(0)
	for i := int64(0); i < 20; i++ {
		want += (i * 37) % 101
	}
	if got := run(t, src, "kernel", 20).AsInt(); got != want {
		t.Errorf("got %d want %d", got, want)
	}
}

func TestGlobalsPersistAcrossCalls(t *testing.T) {
	src := `
int counter;
int bump() { counter++; return counter; }`
	u := cparser.MustParse(src)
	in, err := New(u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(1); want <= 3; want++ {
		res, err := in.CallKernel("bump", nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret.AsInt() != want {
			t.Errorf("call %d: got %d", want, res.Ret.AsInt())
		}
	}
}

func TestFloatSemantics(t *testing.T) {
	src := `
float mix(float a, float b) {
    return a * 0.5 + b * 0.25;
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("mix", []Value{FloatValue(2.0), FloatValue(4.0)})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Ret.AsFloat(); got != 2.0 {
		t.Errorf("got %g", got)
	}
}

func TestCharAndCasts(t *testing.T) {
	src := `
int f() {
    char c = 'A';
    int i = (int)c + 1;
    float g = (float)i / 2;
    return (int)g;
}`
	if got := run(t, src, "f").AsInt(); got != 33 {
		t.Errorf("got %d", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1:
        r += 1;
    case 2:
        r += 2;
        break;
    case 3:
        r += 100;
        break;
    default:
        r = -1;
    }
    return r;
}`
	cases := map[int64]int64{1: 3, 2: 2, 3: 100, 9: -1}
	for in, want := range cases {
		if got := run(t, `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1:
        r += 1;
    case 2:
        r += 2;
        break;
    case 3:
        r += 100;
        break;
    default:
        r = -1;
    }
    return r;
}`, "f", in).AsInt(); got != want {
			t.Errorf("f(%d) = %d, want %d", in, got, want)
		}
	}
	_ = src
}

func TestTernaryAndLogical(t *testing.T) {
	src := `
int f(int a, int b) {
    int m = a > b ? a : b;
    if (a > 0 && b > 0) { m += 100; }
    if (a < 0 || b < 0) { m -= 1000; }
    return m;
}`
	if got := run(t, src, "f", 3, 8).AsInt(); got != 108 {
		t.Errorf("got %d", got)
	}
	if got := run(t, src, "f", -3, 8).AsInt(); got != -992 {
		t.Errorf("got %d", got)
	}
}

func TestShortCircuitNoSideEffects(t *testing.T) {
	src := `
int g;
int bump() { g++; return 1; }
int f(int a) {
    g = 0;
    if (a > 0 || bump()) { }
    if (a > 0 && bump()) { }
    return g;
}`
	// a>0: || short-circuits (no bump), && evaluates bump once -> g=1.
	if got := run(t, src, "f", 5).AsInt(); got != 1 {
		t.Errorf("got %d want 1", got)
	}
	// a<=0: || evaluates bump, && short-circuits -> g=1.
	if got := run(t, src, "f", -5).AsInt(); got != 1 {
		t.Errorf("got %d want 1", got)
	}
}

func TestOutParamArrays(t *testing.T) {
	src := `
void scale(float in[4], float out[4], float k) {
    for (int i = 0; i < 4; i++) { out[i] = in[i] * k; }
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	inArr := NewArrayObject("in", ctypes.FloatT, []Value{
		FloatValue(1), FloatValue(2), FloatValue(3), FloatValue(4)})
	outArr := NewArrayObject("out", ctypes.FloatT, make([]Value, 4))
	_, err := in.CallKernel("scale", []Value{inArr, outArr, FloatValue(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 4, 6, 8} {
		if got := outArr.Obj.Elems[i].AsFloat(); got != want {
			t.Errorf("out[%d] = %g want %g", i, got, want)
		}
	}
}

func TestStructValueSemantics(t *testing.T) {
	src := `
struct P { int x; int y; };
int f() {
    struct P a;
    a.x = 1;
    a.y = 2;
    struct P b = a;
    b.x = 100;
    return a.x * 1000 + b.x;
}`
	if got := run(t, src, "f").AsInt(); got != 1100 {
		t.Errorf("got %d, want 1100 (struct assign must copy)", got)
	}
}

func TestStructMethodsAndStreams(t *testing.T) {
	src := `
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    If2(hls::stream<unsigned> &i, hls::stream<unsigned> &o) : in(i), out(o) {}
    void do1() {
        while (!in.empty()) {
            out.write(in.read() + 1);
        }
    }
};
unsigned top(unsigned v) {
    hls::stream<unsigned> a;
    hls::stream<unsigned> b;
    hls::stream<unsigned> c;
    a.write(v);
    a.write(v + 10);
    If2{ a, b }.do1();
    If2{ b, c }.do1();
    unsigned r = c.read();
    unsigned r2 = c.read();
    return r * 1000 + r2;
}`
	if got := run(t, src, "top", 5).AsInt(); got != 7017 {
		t.Errorf("got %d, want 7017", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, fn string
		wantErr       string
	}{
		{"oob", `int f() { int a[4]; return a[9]; }`, "f", "out of bounds"},
		{"null", `int f() { int *p = 0; return *p; }`, "f", "null"},
		{"divzero", `int f(int x) { return 10 / (x - x); }`, "f", "division by zero"},
		{"useafterfree", `
int f() {
    int *p = (int *)malloc(sizeof(int));
    free(p);
    return *p;
}`, "f", "use after free"},
		{"infinite", `int f() { int i = 0; while (1) { i++; } return i; }`, "f", "step limit"},
		{"deep", `int f(int n) { return f(n); }`, "f", "depth limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u := cparser.MustParse(c.src)
			in, err := New(u, Options{MaxSteps: 100000})
			if err != nil {
				t.Fatal(err)
			}
			var args []Value
			if strings.Contains(c.src, "int f(int") {
				args = []Value{IntValue(1)}
			}
			_, err = in.CallKernel(c.fn, args)
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestFPGAModeRejectsMalloc(t *testing.T) {
	src := `int f() { int *p = (int *)malloc(4); return 0; }`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{Mode: FPGA})
	_, err := in.CallKernel("f", nil)
	if err == nil || !strings.Contains(err.Error(), "dynamic memory") {
		t.Errorf("FPGA malloc should fail, got %v", err)
	}
}

func TestFPGAWrapping(t *testing.T) {
	src := `
fpga_uint<7> g;
int f(int x) {
    g = x;
    return (int)g;
}`
	u := cparser.MustParse(src)
	fp, _ := New(u, Options{Mode: FPGA})
	res, err := fp.CallKernel("f", []Value{IntValue(130)})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Ret.AsInt(); got != 2 { // 130 mod 128
		t.Errorf("FPGA fpga_uint<7> store of 130 = %d, want 2", got)
	}
	cpu, _ := New(u, Options{Mode: CPU})
	res, err = cpu.CallKernel("f", []Value{IntValue(130)})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Ret.AsInt(); got != 130 {
		t.Errorf("CPU mode must not wrap: got %d", got)
	}
}

func TestCoverageRecording(t *testing.T) {
	src := `
int f(int x) {
    if (x > 0) { return 1; }
    return 0;
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{Coverage: true})
	if _, err := in.CallKernel("f", []Value{IntValue(5)}); err != nil {
		t.Fatal(err)
	}
	if in.CoverageCount() != 1 {
		t.Errorf("one outcome after positive input, got %d", in.CoverageCount())
	}
	if _, err := in.CallKernel("f", []Value{IntValue(-5)}); err != nil {
		t.Fatal(err)
	}
	if in.CoverageCount() != 2 {
		t.Errorf("both outcomes after both inputs, got %d", in.CoverageCount())
	}
}

func TestProfileRanges(t *testing.T) {
	src := `
int visit(int v) { int ret = v * 2 + 3; return ret; }
int kernel(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) { total += visit(i); }
    return total;
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{Profile: true})
	if _, err := in.CallKernel("kernel", []Value{IntValue(41)}); err != nil {
		t.Fatal(err)
	}
	r, ok := in.Profiles["visit.ret"]
	if !ok {
		t.Fatal("no profile for visit.ret")
	}
	if r.Max != 83 || r.Min != 3 {
		t.Errorf("visit.ret range [%d,%d], want [3,83]", r.Min, r.Max)
	}
	// The paper's example: max 83 fits in fpga_uint<7>.
	ft := ctypes.FitInteger(r.Min, r.Max)
	if ft.Width != 7 || !ft.Unsigned {
		t.Errorf("fitted type %v, want fpga_uint<7>", ft)
	}
}

func TestPrintfOutput(t *testing.T) {
	src := `
void f(int x) {
    printf("x=%d y=%f c=%c%%\n", x, 1.5, 65);
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("f", []Value{IntValue(7)})
	if err != nil {
		t.Fatal(err)
	}
	want := "x=7 y=1.500000 c=A%\n"
	if res.Output != want {
		t.Errorf("output %q want %q", res.Output, want)
	}
}

func TestCostAccumulates(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i * i; }
    return s;
}`
	u := cparser.MustParse(src)
	small, _ := New(u, Options{})
	rs, _ := small.CallKernel("f", []Value{IntValue(10)})
	big, _ := New(u, Options{})
	rb, _ := big.CallKernel("f", []Value{IntValue(1000)})
	if rb.Cost <= rs.Cost*10 {
		t.Errorf("cost should scale with work: %d vs %d", rs.Cost, rb.Cost)
	}
}

func TestPragmaSpeedsUpFPGALoop(t *testing.T) {
	plain := `
void k(int a[64], int b[64]) {
    for (int i = 0; i < 64; i++) {
        b[i] = a[i] * 3 + 1;
    }
}`
	pragma := `
void k(int a[64], int b[64]) {
#pragma HLS array_partition variable=a factor=8
#pragma HLS array_partition variable=b factor=8
    for (int i = 0; i < 64; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
        b[i] = a[i] * 3 + 1;
    }
}`
	runFPGA := func(src string) int64 {
		u := cparser.MustParse(src)
		in, _ := New(u, Options{Mode: FPGA})
		a := NewArrayObject("a", ctypes.IntT, make([]Value, 64))
		b := NewArrayObject("b", ctypes.IntT, make([]Value, 64))
		res, err := in.CallKernel("k", []Value{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	cp, cf := runFPGA(plain), runFPGA(pragma)
	if cf*4 > cp {
		t.Errorf("pragmas should cut cycles substantially: plain=%d pragma=%d", cp, cf)
	}
}

func TestDataflowOverlapsCalls(t *testing.T) {
	seq := `
void stage(int a[32], int b[32]) {
    for (int i = 0; i < 32; i++) { b[i] = a[i] + 1; }
}
void top(int a[32], int b[32], int c[32]) {
    stage(a, b);
    stage(b, c);
}`
	flow := `
void stage(int a[32], int b[32]) {
    for (int i = 0; i < 32; i++) { b[i] = a[i] + 1; }
}
void top(int a[32], int b[32], int c[32]) {
#pragma HLS dataflow
    stage(a, b);
    stage(b, c);
}`
	runTop := func(src string) int64 {
		u := cparser.MustParse(src)
		in, _ := New(u, Options{Mode: FPGA})
		mk := func() Value { return NewArrayObject("x", ctypes.IntT, make([]Value, 32)) }
		res, err := in.CallKernel("top", []Value{mk(), mk(), mk()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	cs, cf := runTop(seq), runTop(flow)
	if cf >= cs {
		t.Errorf("dataflow should overlap stages: seq=%d flow=%d", cs, cf)
	}
}

// Property: interpreter integer arithmetic matches Go's int64 semantics
// for + - * on arbitrary inputs (CPU mode, no wrapping).
func TestArithmeticMatchesGo(t *testing.T) {
	u := cparser.MustParse(`
long long f(long long a, long long b) { return a * 3 + b - (a ^ b); }`)
	f := func(a, b int32) bool {
		in, _ := New(u, Options{})
		av, bv := int64(a), int64(b)
		res, err := in.CallKernel("f", []Value{
			{Kind: VInt, Int: av, Width: 64}, {Kind: VInt, Int: bv, Width: 64}})
		if err != nil {
			return false
		}
		return res.Ret.AsInt() == av*3+bv-(av^bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: WrapInt agrees with Go's masking semantics for unsigned widths.
func TestWrapIntProperty(t *testing.T) {
	f := func(v int64, w uint8) bool {
		width := int(w%63) + 1
		got := WrapInt(v, width, true)
		want := int64(uint64(v) & ((1 << uint(width)) - 1))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: signed WrapInt stays within [-2^(w-1), 2^(w-1)-1] and is a
// fixed point for in-range values.
func TestWrapIntSignedProperty(t *testing.T) {
	f := func(v int64, w uint8) bool {
		width := int(w%62) + 2
		got := WrapInt(v, width, false)
		min := int64(-1) << uint(width-1)
		max := -min - 1
		if got < min || got > max {
			return false
		}
		if v >= min && v <= max && got != v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDoWhile(t *testing.T) {
	src := `
int f(int n) {
    int c = 0;
    do { c++; n--; } while (n > 0);
    return c;
}`
	if got := run(t, src, "f", 5).AsInt(); got != 5 {
		t.Errorf("got %d", got)
	}
	// Body runs at least once.
	if got := run(t, src, "f", -3).AsInt(); got != 1 {
		t.Errorf("do-while with false cond ran %d times", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
int f() {
    int s = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s += i;
    }
    return s;
}`
	if got := run(t, src, "f").AsInt(); got != 25 { // 1+3+5+7+9
		t.Errorf("got %d, want 25", got)
	}
}

func TestStaticLocal(t *testing.T) {
	src := `
int f() {
    static int calls = 0;
    calls++;
    return calls;
}
int g() { f(); f(); return f(); }`
	if got := run(t, src, "g").AsInt(); got != 3 {
		t.Errorf("static local: got %d want 3", got)
	}
}

func TestValueEqualTolerance(t *testing.T) {
	if !Equal(FloatValue(1.0), FloatValue(1.0+1e-9), 1e-6) {
		t.Error("close floats should compare equal")
	}
	if Equal(FloatValue(1.0), FloatValue(1.1), 1e-6) {
		t.Error("distant floats should differ")
	}
	if !Equal(IntValue(5), IntValue(5), 0) {
		t.Error("equal ints")
	}
	if Equal(IntValue(5), IntValue(6), 0) {
		t.Error("unequal ints")
	}
}
