package interp

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// The compiler translates one function body into direct-threaded code
// (code.go) by mirroring the tree walker case-by-case. Every decision
// the walker makes from information that is static — name resolution,
// expression types, strides, builtin dispatch, branch IDs, pragma
// directives — is resolved here once; everything that can differ at run
// time (values, modes, partition maps, callee declarations under
// structure-sharing units) stays a run-time read. When a construct
// cannot be reproduced exactly, compilation bails out (panic recovered
// in compileFunc) and the whole function falls back to the tree.

// fallbackError is the sentinel the compiler panics with to bail out.
type fallbackError struct{ why string }

func bail(why string) { panic(&fallbackError{why: why}) }

// ctSlot is a compile-time name binding: the frame slot plus the
// declared type (what frame.lookup(...).typ would report) and whether
// the binding is array storage (isLV == false at run time).
type ctSlot struct {
	slot    int
	typ     ctypes.Type
	isArray bool
}

type compiler struct {
	unit   *cast.Unit
	fn     *cast.FuncDecl
	scopes []map[string]ctSlot
	nslots int
	// globals maps name -> declared type with Reset's last-wins
	// semantics (the runtime map is overwritten in declaration order).
	globals map[string]ctypes.Type
	methods map[string]map[string]*cast.FuncDecl
}

func newCompiler(u *cast.Unit, fn *cast.FuncDecl) *compiler {
	c := &compiler{
		unit:    u,
		fn:      fn,
		globals: map[string]ctypes.Type{},
		methods: map[string]map[string]*cast.FuncDecl{},
	}
	for _, d := range u.Decls {
		switch x := d.(type) {
		case *cast.VarDecl:
			c.globals[x.Name] = x.Type
		case *cast.StructDecl:
			m := map[string]*cast.FuncDecl{}
			for _, fn := range x.Methods {
				m[fn.Name] = fn
			}
			c.methods[x.Type.Tag] = m
		}
	}
	return c
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, map[string]ctSlot{}) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// declare allocates a fresh slot for a name in the current scope (a
// redeclaration shadows, exactly like frame.define overwriting the
// scope map entry).
func (c *compiler) declare(name string, t ctypes.Type, isArray bool) int {
	s := c.nslots
	c.nslots++
	c.scopes[len(c.scopes)-1][name] = ctSlot{slot: s, typ: t, isArray: isArray}
	return s
}

// lookup resolves a name against the compile-time scope chain.
func (c *compiler) lookup(name string) (ctSlot, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	return ctSlot{}, false
}

// compileFunc compiles fn against unit u; any bail-out (or compiler
// defect) recovers into a fallback marker and the tree walker runs the
// function instead.
func compileFunc(u *cast.Unit, fn *cast.FuncDecl) (cf *compiledFunc) {
	cf = &compiledFunc{fn: fn}
	defer func() {
		if r := recover(); r != nil {
			*cf = compiledFunc{fn: fn, fallback: true}
		}
	}()
	if fn.Body == nil {
		cf.fallback = true
		return
	}
	c := newCompiler(u, fn)
	c.pushScope() // the frame's parameter scope (newFrame's initial scope)
	cf.paramSlots = make([]int, len(fn.Params))
	for i, prm := range fn.Params {
		// Parameters always bind as scalar lvalues (arrays decay to
		// pointers in bindParams), so isArray is false.
		cf.paramSlots[i] = c.declare(prm.Name, prm.Type, false)
	}
	c.pushScope() // execBlock's scope for the body
	for _, s := range fn.Body.Stmts {
		cf.stmts = append(cf.stmts, c.stmt(s))
		cf.isCall = append(cf.isCall, isCallStmt(s))
	}
	c.popScope()
	c.popScope()
	cf.nslots = c.nslots
	cf.parts = gatherPartitions(fn)
	cf.dataflow = hasDataflow(fn)
	return
}

// ---------------------------------------------------------------------------
// Statements

// stmt compiles one statement. The produced op performs the walker's
// execStmt step (in.step(s.Pos())) before its work.
func (c *compiler) stmt(s cast.Stmt) execOp {
	pos := s.Pos()
	switch x := s.(type) {
	case *cast.ExprStmt:
		ev := c.eval(x.X)
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			ev(in, fr)
			return ctlNone
		}
	case *cast.DeclStmt:
		return c.declStmt(x)
	case *cast.Block:
		c.pushScope()
		ops := make([]execOp, 0, len(x.Stmts))
		for _, sub := range x.Stmts {
			ops = append(ops, c.stmt(sub))
		}
		c.popScope()
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			for _, op := range ops {
				if ctl := op(in, fr); ctl != ctlNone || fr.returned {
					return ctl
				}
			}
			return ctlNone
		}
	case *cast.If:
		return c.ifStmt(x)
	case *cast.For:
		return c.forStmt(x)
	case *cast.While:
		return c.whileStmt(x)
	case *cast.Return:
		var ev evalOp
		if x.X != nil {
			ev = c.eval(x.X)
		}
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			if ev != nil {
				fr.retVal = ev(in, fr)
			}
			fr.returned = true
			in.addCost(costReturn)
			return ctlNone
		}
	case *cast.Break:
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			return ctlBreak
		}
	case *cast.Continue:
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			return ctlContinue
		}
	case *cast.Switch:
		return c.switchStmt(x)
	case *cast.Pragma:
		d := ParsePragma(x.Text)
		if d.Kind == PragmaArrayPartition && d.Variable != "" {
			name, banks := d.Variable, partitionBanks(d)
			return func(in *Interp, fr *frame) control {
				in.step(pos)
				in.setPartition(name, banks)
				return ctlNone
			}
		}
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			return ctlNone
		}
	case *cast.Label:
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			return ctlNone
		}
	case *cast.Goto:
		p := x.P
		return func(in *Interp, fr *frame) control {
			in.step(pos)
			in.fail(p, "goto is not supported by the interpreter")
			return ctlNone
		}
	}
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		return ctlNone
	}
}

// condStmt compiles a statement in a conditionally-executed non-block
// position (if branch, loop body, switch arm). A declaration here would
// define its name in the enclosing runtime scope only on the paths that
// execute it — static slot resolution cannot express that, so the
// function falls back.
func (c *compiler) condStmt(s cast.Stmt) execOp {
	if _, ok := s.(*cast.DeclStmt); ok {
		bail("declaration in conditional non-block position")
	}
	return c.stmt(s)
}

func (c *compiler) ifStmt(x *cast.If) execOp {
	pos, bid := x.P, x.BranchID
	cond := c.eval(x.Cond)
	then := c.condStmt(x.Then)
	var els execOp
	if x.Else != nil {
		els = c.condStmt(x.Else)
	}
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		in.addCost(costBranch)
		cv := cond(in, fr).Truthy()
		in.recordBranch(bid, cv)
		if cv {
			return then(in, fr)
		}
		if els != nil {
			return els(in, fr)
		}
		return ctlNone
	}
}

func (c *compiler) forStmt(f *cast.For) execOp {
	pos, fp, bid := f.Pos(), f.P, f.BranchID
	c.pushScope()
	var initOp execOp
	if f.Init != nil {
		initOp = c.stmt(f.Init)
	}
	var condOp evalOp
	if f.Cond != nil {
		condOp = c.eval(f.Cond)
	}
	var postOp evalOp
	if f.Post != nil {
		postOp = c.eval(f.Post)
	}
	body := c.condStmt(f.Body)
	c.popScope()
	ls := newLoopScale(f.Pragmas, f.Body)
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		if initOp != nil {
			initOp(in, fr)
		}
		startCost := in.cost
		iterations := int64(0)
		for {
			in.step(fp)
			cond := true
			if condOp != nil {
				in.addCost(costBranch)
				cond = condOp(in, fr).Truthy()
			}
			in.recordBranch(bid, cond)
			if !cond {
				break
			}
			iterations++
			ctl := body(in, fr)
			if fr.returned || ctl == ctlBreak {
				in.vmScaleLoop(ls, startCost, iterations, 1)
				return ctlNone
			}
			if postOp != nil {
				postOp(in, fr)
			}
		}
		in.vmScaleLoop(ls, startCost, iterations, 1)
		return ctlNone
	}
}

func (c *compiler) whileStmt(w *cast.While) execOp {
	pos, wp, bid, doWhile := w.Pos(), w.P, w.BranchID, w.DoWhile
	cond := c.eval(w.Cond)
	// execWhile runs the body in the enclosing scope (no push).
	body := c.condStmt(w.Body)
	ls := newLoopScale(w.Pragmas, w.Body)
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		startCost := in.cost
		first := true
		iterations := int64(0)
		for {
			in.step(wp)
			if !doWhile || !first {
				in.addCost(costBranch)
				cv := cond(in, fr).Truthy()
				in.recordBranch(bid, cv)
				if !cv {
					break
				}
			}
			iterations++
			ctl := body(in, fr)
			if fr.returned || ctl == ctlBreak {
				break
			}
			if doWhile && first {
				in.addCost(costBranch)
				cv := cond(in, fr).Truthy()
				in.recordBranch(bid, cv)
				if !cv {
					break
				}
			}
			first = false
		}
		in.vmScaleLoop(ls, startCost, iterations, whileMinII)
		return ctlNone
	}
}

func (c *compiler) switchStmt(sw *cast.Switch) execOp {
	pos, bid := sw.P, sw.BranchID
	xOp := c.eval(sw.X)
	caseVals := make([]evalOp, len(sw.Cases))
	defaultIdx := -1
	bodies := make([][]execOp, len(sw.Cases))
	for i, cs := range sw.Cases {
		if cs.IsDefault {
			if defaultIdx < 0 {
				defaultIdx = i
			}
		} else {
			caseVals[i] = c.eval(cs.Value)
		}
		// Case bodies run in the switch's enclosing scope with
		// fall-through: declarations are conditional, so they bail.
		for _, s := range cs.Body {
			bodies[i] = append(bodies[i], c.condStmt(s))
		}
	}
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		v := xOp(in, fr).AsInt()
		in.addCost(costBranch)
		matched := -1
		for i, cop := range caseVals {
			if cop == nil {
				continue
			}
			if cop(in, fr).AsInt() == v {
				matched = i
				break
			}
		}
		if matched < 0 {
			matched = defaultIdx
		}
		if matched < 0 {
			return ctlNone
		}
		in.recordBranch(bid+matched, true)
		for i := matched; i < len(bodies); i++ {
			for _, op := range bodies[i] {
				ctl := op(in, fr)
				if fr.returned {
					return ctlNone
				}
				if ctl == ctlBreak {
					return ctlNone
				}
				if ctl == ctlContinue {
					return ctlContinue
				}
			}
		}
		return ctlNone
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (c *compiler) declStmt(d *cast.DeclStmt) execOp {
	if d.Static {
		// Statics resolve their one-shot initializer through the scope
		// maps (makeStorage runs under the tree evaluator); keeping that
		// path exact in slot frames is not worth the rarity.
		bail("static local declaration")
	}
	if len(d.VLADims) > 0 {
		bail("variable-length array declaration")
	}
	pos := d.Pos()
	name, t := d.Name, d.Type
	rt := ctypes.Resolve(t)
	if arr, ok := rt.(ctypes.Array); ok {
		op := c.arrayDecl(pos, name, t, arr, d.Init)
		return op
	}
	// Scalar (or struct/stream) declaration. Compile the initializer
	// first: it evaluates in the scope state before the name is defined
	// (makeStorage runs before frame.define).
	initOp := c.initOp(d.Init, rt)
	slot := c.declare(name, t, false)
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		obj := &Object{Name: name, Elem: rt, Elems: []Value{ZeroValue(rt)}}
		b := &binding{lv: lvalue{obj: obj, declared: rt}, typ: t, isLV: true}
		if initOp != nil {
			v := initOp(in, fr)
			b.lv.store(in.coerce(v, rt).DeepCopy())
		}
		fr.slots[slot] = b
		if in.opts.Profile {
			if v := b.lv.load(); v.Kind == VInt {
				in.noteProfile(fr.fn, name, v.Int)
			}
		}
		in.addCost(costStore)
		return ctlNone
	}
}

// arrayDecl compiles an array declaration: storage allocation plus the
// flattened initializer-list fill. Leaves beyond the array's capacity
// are never evaluated by fillArray, so they are truncated statically.
func (c *compiler) arrayDecl(pos ctoken.Pos, name string, t ctypes.Type, arr ctypes.Array, init cast.Expr) execOp {
	if arr.Len < 0 {
		// The walker fails at allocation time with a zero position.
		slotless := func(in *Interp, fr *frame) control {
			in.step(pos)
			in.fail(ctoken.Pos{}, "array %q has unknown size at allocation", name)
			return ctlNone
		}
		// The declaration never completes, but keep scope state coherent
		// for any (unreachable) later lookups.
		c.declare(name, t, true)
		return slotless
	}
	total, elem := flattenArray(arr)
	var leafOps []evalOp
	if il, ok := init.(*cast.InitList); ok {
		var collect func(e cast.Expr)
		collect = func(e cast.Expr) {
			if sub, ok := e.(*cast.InitList); ok {
				for _, el := range sub.Elems {
					collect(el)
				}
				return
			}
			if len(leafOps) < total {
				leafOps = append(leafOps, c.eval(e))
			}
		}
		for _, el := range il.Elems {
			collect(el)
		}
	}
	// A non-InitList initializer on an array declaration is ignored by
	// makeStorage (never evaluated), so nothing is compiled for it.
	slot := c.declare(name, t, true)
	return func(in *Interp, fr *frame) control {
		in.step(pos)
		obj := &Object{Name: name, Elem: elem, Elems: make([]Value, total)}
		zero := ZeroValue(elem)
		for i := range obj.Elems {
			obj.Elems[i] = zero.DeepCopy()
		}
		for i, leaf := range leafOps {
			obj.Elems[i] = in.coerce(leaf(in, fr), elem).DeepCopy()
		}
		fr.slots[slot] = &binding{typ: t, obj: obj}
		in.addCost(costStore)
		return ctlNone
	}
}

// initOp compiles evalInit: a struct initializer list constructs the
// struct value field by field (constructor dispatch falls back — it
// routes through callMethod, which is a tree-walker path); anything
// else is a plain evaluation.
func (c *compiler) initOp(init cast.Expr, rt ctypes.Type) evalOp {
	if init == nil {
		return nil
	}
	if il, ok := init.(*cast.InitList); ok {
		if st, ok := ctypes.Resolve(rt).(*ctypes.Struct); ok {
			return c.structInit(st, il)
		}
	}
	return c.eval(init)
}

// structInit compiles structFromInitList for the no-constructor case.
func (c *compiler) structInit(st *ctypes.Struct, il *cast.InitList) evalOp {
	if ms, ok := c.methods[st.Tag]; ok {
		if ctor, ok := ms[st.Tag]; ok && len(ctor.Params) == len(il.Elems) {
			bail("struct constructor call")
		}
	}
	n := len(il.Elems)
	if n > len(st.Fields) {
		n = len(st.Fields)
	}
	fieldOps := make([]evalOp, n)
	for i := 0; i < n; i++ {
		fieldOps[i] = c.eval(il.Elems[i])
	}
	// Trailing elements beyond the field count are never evaluated
	// (structFromInitList breaks out of the loop first).
	return func(in *Interp, fr *frame) Value {
		v := ZeroValue(st)
		for i, fop := range fieldOps {
			v.Fields[i] = in.coerce(fop(in, fr), st.Fields[i].Type).DeepCopy()
		}
		return v
	}
}

// ---------------------------------------------------------------------------
// Static expression typing

// ctTypeOf is the compile-time mirror of Interp.typeOfExpr: identical
// case analysis, with frame lookups replaced by the compiler's scope
// chain and the globals/methods tables replaced by their compile-time
// equivalents. Compiled functions never run with a receiver (method
// invocations via callMethod stay on the tree walker, and plain calls
// reach a method body with a nil receiver on both paths), so the
// receiver cases of typeOfExpr are dead here.
func (c *compiler) ctTypeOf(e cast.Expr) ctypes.Type {
	switch x := e.(type) {
	case *cast.IntLit:
		return ctypes.IntT
	case *cast.FloatLit:
		return ctypes.DoubleT
	case *cast.CharLit:
		return ctypes.Char
	case *cast.BoolLit:
		return ctypes.Bool{}
	case *cast.Ident:
		if s, ok := c.lookup(x.Name); ok {
			return s.typ
		}
		if t, ok := c.globals[x.Name]; ok {
			return t
		}
		return nil
	case *cast.Index:
		bt := c.ctTypeOf(x.X)
		switch u := ctypes.Resolve(bt).(type) {
		case ctypes.Array:
			return u.Elem
		case ctypes.Pointer:
			return u.Elem
		}
		return nil
	case *cast.Member:
		bt := c.ctTypeOf(x.X)
		rt := ctypes.Resolve(bt)
		if p, ok := rt.(ctypes.Pointer); ok && x.Arrow {
			rt = ctypes.Resolve(p.Elem)
		}
		if st, ok := rt.(*ctypes.Struct); ok {
			if i := st.FieldIndex(x.Field); i >= 0 {
				return st.Fields[i].Type
			}
		}
		return nil
	case *cast.Unary:
		switch x.Op {
		case ctoken.MUL:
			if p, ok := ctypes.Resolve(c.ctTypeOf(x.X)).(ctypes.Pointer); ok {
				return p.Elem
			}
			return nil
		case ctoken.AND:
			bt := c.ctTypeOf(x.X)
			if bt == nil {
				return nil
			}
			return ctypes.Pointer{Elem: bt}
		case ctoken.NOT:
			return ctypes.IntT
		}
		return c.ctTypeOf(x.X)
	case *cast.Postfix:
		return c.ctTypeOf(x.X)
	case *cast.Binary:
		lt := c.ctTypeOf(x.L)
		rt := c.ctTypeOf(x.R)
		if lt == nil {
			return rt
		}
		if rt == nil {
			return lt
		}
		if ctypes.IsFloat(lt) {
			return lt
		}
		if ctypes.IsFloat(rt) {
			return rt
		}
		return lt
	case *cast.Assign:
		return c.ctTypeOf(x.L)
	case *cast.Cond:
		return c.ctTypeOf(x.T)
	case *cast.Cast:
		return x.To
	case *cast.Call:
		if id, ok := x.Fun.(*cast.Ident); ok {
			if fn := c.unit.Func(id.Name); fn != nil {
				return fn.Ret
			}
			switch id.Name {
			case "malloc":
				return ctypes.Pointer{Elem: ctypes.Char}
			case "sqrt", "fabs", "pow", "sin", "cos", "exp", "log",
				"floor", "ceil", "fmin", "fmax":
				return ctypes.DoubleT
			case "abs":
				return ctypes.IntT
			}
		}
		if m, ok := x.Fun.(*cast.Member); ok {
			bt := c.ctTypeOf(m.X)
			if st, ok := ctypes.Resolve(bt).(ctypes.Stream); ok {
				switch m.Field {
				case "read":
					return st.Elem
				case "empty", "full":
					return ctypes.Bool{}
				case "size":
					return ctypes.IntT
				}
				return ctypes.Void{}
			}
			if st, ok := ctypes.Resolve(bt).(*ctypes.Struct); ok {
				if ms, ok := c.methods[st.Tag]; ok {
					if fn, ok := ms[m.Field]; ok {
						return fn.Ret
					}
				}
			}
		}
		return nil
	case *cast.SizeofExpr, *cast.SizeofType:
		return ctypes.UIntT
	case *cast.InitList:
		return x.Type
	}
	return nil
}
