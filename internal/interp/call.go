package interp

import (
	"fmt"
	"math"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// evalCall dispatches function calls: builtins, stream methods, struct
// methods, and user functions.
func (in *Interp) evalCall(c *cast.Call) Value {
	switch fun := c.Fun.(type) {
	case *cast.Ident:
		if v, ok := in.evalBuiltin(fun.Name, c); ok {
			return v
		}
		// A bare call inside a method body first resolves against the
		// receiver's sibling methods (C++ implicit this).
		if len(in.frames) > 0 {
			fr := in.top()
			if fr.receiver != nil && fr.recvType != nil {
				if ms, ok := in.methods[fr.recvType.Tag]; ok {
					if m, ok := ms[fun.Name]; ok {
						return in.callMethod(m, *fr.receiver, fr.recvType, c.Args, c.P)
					}
				}
			}
		}
		fn := in.unit.Func(fun.Name)
		if fn == nil {
			in.fail(c.P, "call to undefined function %q", fun.Name)
		}
		args := make([]Value, len(c.Args))
		for i, a := range c.Args {
			var pt ctypes.Type
			if i < len(fn.Params) {
				pt = fn.Params[i].Type
			}
			args[i] = in.evalArg(a, pt)
		}
		return in.callFunction(fn, args, c.P)
	case *cast.Member:
		return in.evalMethodCall(fun, c)
	}
	in.fail(c.P, "unsupported call target %T", c.Fun)
	return Value{}
}

// evalArg evaluates an argument against its parameter type. Reference
// parameters receive an alias of the argument's storage (streams and
// structs); everything else is passed by value.
func (in *Interp) evalArg(a cast.Expr, pt ctypes.Type) Value {
	if pt != nil {
		if _, isRef := pt.(ctypes.Ref); isRef {
			// Streams have reference semantics already; other refs would
			// need alias bindings, and streams/structs are the only Ref
			// uses in the subset.
			v := in.eval(a)
			return v
		}
	}
	v := in.eval(a)
	if v.Kind == VStruct {
		return v.DeepCopy()
	}
	return v
}

// evalMethodCall handles s.read(), s.write(x), s.empty() on streams and
// member-function calls on struct instances or temporaries.
func (in *Interp) evalMethodCall(m *cast.Member, c *cast.Call) Value {
	// Stream builtins first: the base must be stream-typed.
	bt := in.typeOfExpr(m.X)
	if st, ok := ctypes.Resolve(bt).(ctypes.Stream); ok {
		return in.evalStreamOp(m, c, st)
	}

	// Struct method call.
	var recvLV lvalue
	var stct *ctypes.Struct
	switch bx := m.X.(type) {
	case *cast.InitList:
		if s, ok := bx.Type.(*ctypes.Struct); ok {
			v := in.structFromInitList(s, bx)
			obj := &Object{Name: "tmp." + s.Tag, Elem: s, Elems: []Value{v}}
			recvLV = lvalue{obj: obj, declared: s}
			stct = s
		}
	default:
		lv, ok := in.tryMemberBase(m)
		if ok {
			if s, ok2 := ctypes.Resolve(in.declaredOf(lv)).(*ctypes.Struct); ok2 {
				recvLV = lv
				stct = s
			}
		}
	}
	if stct == nil {
		in.fail(c.P, "method call %q on non-struct", m.Field)
	}
	ms, ok := in.methods[stct.Tag]
	if !ok {
		in.fail(c.P, "struct %s has no methods", stct.Tag)
	}
	fn, ok := ms[m.Field]
	if !ok {
		in.fail(c.P, "struct %s has no method %q", stct.Tag, m.Field)
	}
	return in.callMethod(fn, recvLV, stct, c.Args, c.P)
}

// tryMemberBase resolves the receiver expression of a method call to
// storage, allocating a temporary when the base is an rvalue.
func (in *Interp) tryMemberBase(m *cast.Member) (lvalue, bool) {
	switch m.X.(type) {
	case *cast.Ident, *cast.Index, *cast.Member:
		defer func() { recover() }() // fall through to rvalue on failure
		return in.mustLvalue(m.X), true
	}
	return lvalue{}, false
}

func (in *Interp) evalStreamOp(m *cast.Member, c *cast.Call, st ctypes.Stream) Value {
	base := in.eval(m.X)
	if base.Kind != VStream || base.Stream == nil {
		in.fail(c.P, "stream operation on non-stream value")
	}
	s := base.Stream
	in.addCost(costStream)
	switch m.Field {
	case "read":
		if len(s.Q) == 0 {
			in.fail(c.P, "read from empty stream %q", s.Name)
		}
		v := s.Q[0]
		s.Q = s.Q[1:]
		return v
	case "write":
		if len(c.Args) != 1 {
			in.fail(c.P, "stream write takes one argument")
		}
		v := in.coerce(in.eval(c.Args[0]), st.Elem)
		s.Q = append(s.Q, v)
		s.Pushes++
		return Value{Kind: VVoid}
	case "empty":
		return BoolValue(len(s.Q) == 0)
	case "size":
		return IntValue(int64(len(s.Q)))
	case "full":
		return BoolValue(false)
	}
	in.fail(c.P, "unknown stream operation %q", m.Field)
	return Value{}
}

// ---------------------------------------------------------------------------
// Builtins

// evalBuiltin executes library calls. The bool result reports whether the
// name was a builtin.
func (in *Interp) evalBuiltin(name string, c *cast.Call) (Value, bool) {
	switch name {
	case "malloc":
		// Bare malloc without a cast: infer nothing; allocate bytes.
		return in.evalMalloc(nil, c), true
	case "free":
		if len(c.Args) == 1 {
			p := in.eval(c.Args[0])
			if p.Kind == VPtr && p.Obj != nil {
				p.Obj.Freed = true
			}
		}
		in.addCost(costCall)
		return Value{Kind: VVoid}, true
	case "printf":
		return in.evalPrintf(c), true
	case "abs":
		v := in.eval(c.Args[0]).AsInt()
		if v < 0 {
			v = -v
		}
		in.addCost(costIAdd)
		return IntValue(v), true
	case "fabs", "fabsf":
		return in.mathCall(c, math.Abs), true
	case "sqrt", "sqrtf":
		return in.mathCall(c, math.Sqrt), true
	case "sin":
		return in.mathCall(c, math.Sin), true
	case "cos":
		return in.mathCall(c, math.Cos), true
	case "exp":
		return in.mathCall(c, math.Exp), true
	case "log":
		return in.mathCall(c, math.Log), true
	case "floor":
		return in.mathCall(c, math.Floor), true
	case "ceil":
		return in.mathCall(c, math.Ceil), true
	case "pow", "powf":
		if len(c.Args) != 2 {
			in.fail(c.P, "pow takes two arguments")
		}
		a := in.eval(c.Args[0]).AsFloat()
		b := in.eval(c.Args[1]).AsFloat()
		in.addCost(costFDiv)
		return FloatValue(math.Pow(a, b)), true
	case "fmin":
		a, b := in.eval(c.Args[0]).AsFloat(), in.eval(c.Args[1]).AsFloat()
		in.addCost(costFAdd)
		return FloatValue(math.Min(a, b)), true
	case "fmax":
		a, b := in.eval(c.Args[0]).AsFloat(), in.eval(c.Args[1]).AsFloat()
		in.addCost(costFAdd)
		return FloatValue(math.Max(a, b)), true
	case "assert":
		v := in.eval(c.Args[0])
		if v.IsZero() {
			in.fail(c.P, "assertion failed")
		}
		return Value{Kind: VVoid}, true
	}
	return Value{}, false
}

func (in *Interp) mathCall(c *cast.Call, f func(float64) float64) Value {
	if len(c.Args) != 1 {
		in.fail(c.P, "math builtin takes one argument")
	}
	v := in.eval(c.Args[0]).AsFloat()
	in.addCost(costFDiv)
	return FloatValue(f(v))
}

// evalMalloc allocates heap storage. castTo, when non-nil, supplies the
// element type; the byte count argument determines the element count.
func (in *Interp) evalMalloc(castTo ctypes.Type, c *cast.Call) Value {
	if in.opts.Mode == FPGA {
		in.fail(c.P, "dynamic memory allocation is not supported on the fabric")
	}
	if len(c.Args) != 1 {
		in.fail(c.P, "malloc takes one argument")
	}
	bytes := in.eval(c.Args[0]).AsInt()
	elem := ctypes.Type(ctypes.Char)
	if castTo != nil {
		if p, ok := ctypes.Resolve(castTo).(ctypes.Pointer); ok {
			elem = ctypes.Resolve(p.Elem)
		}
	}
	esz := int64(SizeofBytes(elem))
	count := bytes / esz
	if count < 1 {
		count = 1
	}
	if count > 1<<22 {
		in.fail(c.P, "allocation too large (%d elements)", count)
	}
	in.mallocSeq++
	obj := &Object{
		Name:  fmt.Sprintf("heap#%d", in.mallocSeq),
		Elem:  elem,
		Elems: make([]Value, count),
	}
	zero := ZeroValue(elem)
	for i := range obj.Elems {
		obj.Elems[i] = zero.DeepCopy()
	}
	in.addCost(costCall)
	return Value{Kind: VPtr, Obj: obj}
}

func (in *Interp) evalPrintf(c *cast.Call) Value {
	if len(c.Args) == 0 {
		return Value{Kind: VVoid}
	}
	format := ""
	if s, ok := c.Args[0].(*cast.StrLit); ok {
		format = s.Value
	}
	args := make([]Value, 0, len(c.Args)-1)
	for _, a := range c.Args[1:] {
		args = append(args, in.eval(a))
	}
	in.out.WriteString(formatC(format, args))
	in.addCost(costCall)
	return Value{Kind: VVoid}
}

// formatC implements the printf subset: %d %u %f %g %c %s %%.
func formatC(format string, args []Value) string {
	var sb strings.Builder
	ai := 0
	next := func() Value {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return Value{}
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			sb.WriteByte(ch)
			continue
		}
		i++
		// Skip width/precision.
		for i < len(format) && (format[i] == '.' || format[i] == '-' ||
			(format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 'd', 'i', 'u', 'l':
			fmt.Fprintf(&sb, "%d", next().AsInt())
		case 'f':
			fmt.Fprintf(&sb, "%f", next().AsFloat())
		case 'g':
			fmt.Fprintf(&sb, "%g", next().AsFloat())
		case 'c':
			fmt.Fprintf(&sb, "%c", rune(next().AsInt()))
		case 's':
			sb.WriteString(next().String())
		case '%':
			sb.WriteByte('%')
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Static expression typing (best effort, for sizeof / strides / members)

// typeOfExpr infers the static type of an expression from declarations in
// scope. It returns nil when the type cannot be determined.
func (in *Interp) typeOfExpr(e cast.Expr) ctypes.Type {
	switch x := e.(type) {
	case *cast.IntLit:
		return ctypes.IntT
	case *cast.FloatLit:
		return ctypes.DoubleT
	case *cast.CharLit:
		return ctypes.Char
	case *cast.BoolLit:
		return ctypes.Bool{}
	case *cast.Ident:
		if len(in.frames) > 0 {
			fr := in.top()
			if b, ok := fr.lookup(x.Name); ok {
				return b.typ
			}
			if fr.recvType != nil {
				if i := fr.recvType.FieldIndex(x.Name); i >= 0 {
					return fr.recvType.Fields[i].Type
				}
			}
		}
		if b, ok := in.globals[x.Name]; ok {
			return b.typ
		}
		return nil
	case *cast.Index:
		bt := in.typeOfExpr(x.X)
		switch u := ctypes.Resolve(bt).(type) {
		case ctypes.Array:
			return u.Elem
		case ctypes.Pointer:
			return u.Elem
		}
		return nil
	case *cast.Member:
		bt := in.typeOfExpr(x.X)
		rt := ctypes.Resolve(bt)
		if p, ok := rt.(ctypes.Pointer); ok && x.Arrow {
			rt = ctypes.Resolve(p.Elem)
		}
		if st, ok := rt.(*ctypes.Struct); ok {
			if i := st.FieldIndex(x.Field); i >= 0 {
				return st.Fields[i].Type
			}
		}
		return nil
	case *cast.Unary:
		switch x.Op {
		case ctoken.MUL:
			if p, ok := ctypes.Resolve(in.typeOfExpr(x.X)).(ctypes.Pointer); ok {
				return p.Elem
			}
			return nil
		case ctoken.AND:
			bt := in.typeOfExpr(x.X)
			if bt == nil {
				return nil
			}
			return ctypes.Pointer{Elem: bt}
		case ctoken.NOT:
			return ctypes.IntT
		}
		return in.typeOfExpr(x.X)
	case *cast.Postfix:
		return in.typeOfExpr(x.X)
	case *cast.Binary:
		lt := in.typeOfExpr(x.L)
		rt := in.typeOfExpr(x.R)
		if lt == nil {
			return rt
		}
		if rt == nil {
			return lt
		}
		if ctypes.IsFloat(lt) {
			return lt
		}
		if ctypes.IsFloat(rt) {
			return rt
		}
		return lt
	case *cast.Assign:
		return in.typeOfExpr(x.L)
	case *cast.Cond:
		return in.typeOfExpr(x.T)
	case *cast.Cast:
		return x.To
	case *cast.Call:
		if id, ok := x.Fun.(*cast.Ident); ok {
			if fn := in.unit.Func(id.Name); fn != nil {
				return fn.Ret
			}
			switch id.Name {
			case "malloc":
				return ctypes.Pointer{Elem: ctypes.Char}
			case "sqrt", "fabs", "pow", "sin", "cos", "exp", "log",
				"floor", "ceil", "fmin", "fmax":
				return ctypes.DoubleT
			case "abs":
				return ctypes.IntT
			}
		}
		if m, ok := x.Fun.(*cast.Member); ok {
			bt := in.typeOfExpr(m.X)
			if st, ok := ctypes.Resolve(bt).(ctypes.Stream); ok {
				switch m.Field {
				case "read":
					return st.Elem
				case "empty", "full":
					return ctypes.Bool{}
				case "size":
					return ctypes.IntT
				}
				return ctypes.Void{}
			}
			if st, ok := ctypes.Resolve(bt).(*ctypes.Struct); ok {
				if ms, ok := in.methods[st.Tag]; ok {
					if fn, ok := ms[m.Field]; ok {
						return fn.Ret
					}
				}
			}
		}
		return nil
	case *cast.SizeofExpr, *cast.SizeofType:
		return ctypes.UIntT
	case *cast.InitList:
		return x.Type
	}
	return nil
}
