package interp

import (
	"fmt"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// Mode selects execution semantics.
type Mode int

// Execution modes.
const (
	// CPU runs the program with software semantics: unbounded heap,
	// native recursion, 32/64-bit arithmetic.
	CPU Mode = iota
	// FPGA runs with fabric semantics: fpga_int arithmetic wraps at its
	// declared width, dynamic allocation faults, the call stack is small,
	// and the cycle model honors HLS pragmas.
	FPGA
)

// Options configures an interpreter.
type Options struct {
	Mode Mode
	// MaxSteps bounds total executed statements/expressions (0 = default).
	MaxSteps int64
	// MaxDepth bounds the call stack (0 = default for the mode).
	MaxDepth int
	// Profile enables value-range tracking of integer variables.
	Profile bool
	// Coverage enables branch coverage recording.
	Coverage bool
	// CaptureName, when set with CaptureCall, snapshots the argument
	// values of every call to the named function — how the fuzzer
	// harvests kernel-entry seeds from a host-program run (Algorithm 1's
	// getKernelSeed).
	CaptureName string
	CaptureCall func(args []Value)
	// Code, when non-nil, enables the compiled fast path: function
	// bodies are compiled once into direct-threaded code (compile.go)
	// and cached in the shared Codebase, keyed by *cast.FuncDecl
	// identity. Semantics, costs, step accounting, coverage, profiles,
	// and error messages are identical to the tree walker (the
	// differential belt in difffuzz_test.go holds both paths to that
	// contract); functions using unsupported constructs fall back to the
	// tree per function.
	Code *Codebase
	// CodeKey is an optional content identity for the unit, enabling
	// compiled-code reuse across distinct units with identical content
	// (see the Codebase CodeKey contract). Empty disables content
	// keying; compiled code is then shared by declaration pointer only.
	CodeKey string
}

// Range is a profiled value range for one variable.
type Range struct {
	Min, Max int64
	Seen     bool
}

// Note extends a range with a new observation.
func (r *Range) Note(v int64) {
	if !r.Seen {
		r.Min, r.Max, r.Seen = v, v, true
		return
	}
	if v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
}

// RuntimeError is any error raised during execution: out-of-bounds access,
// null dereference, allocation faults in FPGA mode, step-limit exhaustion.
type RuntimeError struct {
	Msg string
	Pos ctoken.Pos
	// Budget marks step-limit exhaustion: the execution was cut off, not
	// observed to misbehave. Differential testing reports budget errors
	// as inconclusive rather than as behavioural divergence.
	Budget bool
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

// IsBudget reports whether err is a step-budget exhaustion — an
// execution cut off by its limit rather than one that misbehaved.
func IsBudget(err error) bool {
	re, ok := err.(*RuntimeError)
	return ok && re.Budget
}

// Result is the outcome of a kernel invocation.
type Result struct {
	Ret    Value
	Cost   int64 // accumulated cost units (cycles in FPGA mode, ops in CPU)
	Steps  int64
	Output string
}

// Interp executes a translation unit.
type Interp struct {
	unit *cast.Unit
	opts Options

	globals map[string]*binding
	methods map[string]map[string]*cast.FuncDecl
	frames  []*frame

	steps int64
	cost  int64
	// rawCost accumulates like cost but is never rescaled by pragma
	// modelling; the ratio cost/rawCost bounds how much parallelism the
	// model may claim for a whole kernel.
	rawCost int64
	out     strings.Builder

	// CoverageBits has two slots per branch site: [2k] = false outcome,
	// [2k+1] = true outcome.
	CoverageBits []bool
	// Profiles maps "func.var" to observed integer ranges.
	Profiles map[string]*Range

	// partitions maps array variable name -> array_partition factor for
	// the function currently executing (FPGA cycle model input).
	partitions map[string]int
	// partitionsShared marks partitions as a compiledFunc's cached map,
	// which runtime pragmas must copy before mutating (setPartition).
	partitionsShared bool
	mallocSeq        int
	// fnCache memoizes unit.Func lookups for compiled call sites, which
	// resolve callees by name at runtime so compiled code can be shared
	// between structure-sharing candidate units.
	fnCache map[string]*cast.FuncDecl
}

// New builds an interpreter over u and initializes global storage.
func New(u *cast.Unit, opts Options) (*Interp, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 4_000_000
	}
	if opts.MaxDepth == 0 {
		if opts.Mode == FPGA {
			opts.MaxDepth = 256
		} else {
			opts.MaxDepth = 4096
		}
	}
	in := &Interp{unit: u, opts: opts}
	if err := in.Reset(); err != nil {
		return nil, err
	}
	return in, nil
}

// Reset reinitializes globals, coverage, cost, and output; profiles
// persist across runs (they accumulate over a test suite).
func (in *Interp) Reset() error {
	in.globals = map[string]*binding{}
	in.methods = map[string]map[string]*cast.FuncDecl{}
	in.frames = nil
	in.steps = 0
	in.cost = 0
	in.rawCost = 0
	in.out.Reset()
	in.CoverageBits = make([]bool, 2*in.unit.NumBranches)
	if in.Profiles == nil {
		in.Profiles = map[string]*Range{}
	}
	in.partitions = map[string]int{}
	in.partitionsShared = false

	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if re, ok := r.(*RuntimeError); ok {
					err = re
					return
				}
				panic(r)
			}
		}()
		for _, d := range in.unit.Decls {
			switch x := d.(type) {
			case *cast.VarDecl:
				in.defineGlobal(x)
			case *cast.StructDecl:
				m := map[string]*cast.FuncDecl{}
				for _, fn := range x.Methods {
					m[fn.Name] = fn
				}
				in.methods[x.Type.Tag] = m
			}
		}
	}()
	return err
}

// Output returns everything printed so far.
func (in *Interp) Output() string { return in.out.String() }

// Cost returns accumulated cost units.
func (in *Interp) Cost() int64 { return in.cost }

func (in *Interp) defineGlobal(d *cast.VarDecl) {
	b := in.makeStorage(d.Name, d.Type, d.Init, true)
	in.globals[d.Name] = b
}

// makeStorage allocates storage for a declaration and evaluates its
// initializer. Array declarations create multi-element objects.
func (in *Interp) makeStorage(name string, t ctypes.Type, init cast.Expr, global bool) *binding {
	rt := ctypes.Resolve(t)
	if arr, ok := rt.(ctypes.Array); ok {
		n := arr.Len
		if n < 0 {
			in.fail(ctoken.Pos{}, "array %q has unknown size at allocation", name)
		}
		total, elem := flattenArray(arr)
		obj := &Object{Name: name, Elem: elem, Elems: make([]Value, total)}
		zero := ZeroValue(elem)
		for i := range obj.Elems {
			obj.Elems[i] = zero.DeepCopy()
		}
		if il, ok := init.(*cast.InitList); ok {
			in.fillArray(obj, il)
		}
		_ = n
		return &binding{typ: t, obj: obj}
	}
	obj := &Object{Name: name, Elem: rt, Elems: []Value{ZeroValue(rt)}}
	b := &binding{lv: lvalue{obj: obj, declared: rt}, typ: t, isLV: true}
	if init != nil {
		v := in.evalInit(init, rt)
		b.lv.store(in.coerce(v, rt).DeepCopy())
	}
	return b
}

// flattenArray flattens nested array types to (total length, element type):
// int[2][3] becomes (6, int) with row-major addressing.
func flattenArray(a ctypes.Array) (int, ctypes.Type) {
	total := a.Len
	elem := ctypes.Resolve(a.Elem)
	for {
		inner, ok := elem.(ctypes.Array)
		if !ok {
			return total, elem
		}
		if inner.Len < 0 {
			return total, elem
		}
		total *= inner.Len
		elem = ctypes.Resolve(inner.Elem)
	}
}

func (in *Interp) fillArray(obj *Object, il *cast.InitList) {
	idx := 0
	var fill func(e cast.Expr)
	fill = func(e cast.Expr) {
		if sub, ok := e.(*cast.InitList); ok {
			for _, el := range sub.Elems {
				fill(el)
			}
			return
		}
		if idx < len(obj.Elems) {
			obj.Elems[idx] = in.coerce(in.eval(e), obj.Elem).DeepCopy()
			idx++
		}
	}
	for _, el := range il.Elems {
		fill(el)
	}
}

// evalInit evaluates an initializer expression in the context of type t
// (struct InitLists construct struct values).
func (in *Interp) evalInit(e cast.Expr, t ctypes.Type) Value {
	if il, ok := e.(*cast.InitList); ok {
		if st, ok := ctypes.Resolve(t).(*ctypes.Struct); ok {
			return in.structFromInitList(st, il)
		}
	}
	return in.eval(e)
}

// structFromInitList builds a struct value, invoking the explicit
// constructor when one exists with matching arity.
func (in *Interp) structFromInitList(st *ctypes.Struct, il *cast.InitList) Value {
	v := ZeroValue(st)
	if ms, ok := in.methods[st.Tag]; ok {
		if ctor, ok := ms[st.Tag]; ok && len(ctor.Params) == len(il.Elems) {
			obj := &Object{Name: "tmp." + st.Tag, Elem: st, Elems: []Value{v}}
			lv := lvalue{obj: obj, declared: st}
			in.callMethod(ctor, lv, st, il.Elems, il.P)
			return obj.Elems[0]
		}
	}
	for i, el := range il.Elems {
		if i >= len(st.Fields) {
			break
		}
		v.Fields[i] = in.coerce(in.eval(el), st.Fields[i].Type).DeepCopy()
	}
	return v
}

// fail raises a runtime error.
func (in *Interp) fail(p ctoken.Pos, format string, args ...any) {
	panic(&RuntimeError{Msg: fmt.Sprintf(format, args...), Pos: p})
}

func (in *Interp) step(p ctoken.Pos) {
	in.steps++
	if in.steps > in.opts.MaxSteps {
		panic(&RuntimeError{
			Msg:    fmt.Sprintf("step limit exceeded (%d)", in.opts.MaxSteps),
			Pos:    p,
			Budget: true,
		})
	}
}

// CallKernel invokes the named function with the given argument values,
// catching runtime errors. Array arguments must be pointer values created
// with NewArrayObject.
func (in *Interp) CallKernel(name string, args []Value) (res Result, err error) {
	fn := in.unit.Func(name)
	if fn == nil {
		return Result{}, fmt.Errorf("interp: no function %q", name)
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				res.Output = in.out.String()
				return
			}
			panic(r)
		}
	}()
	startCost := in.cost
	startRaw := in.rawCost
	ret := in.callFunction(fn, args, fn.P)
	cost := in.cost - startCost
	if in.opts.Mode == FPGA {
		if floor := (in.rawCost - startRaw) / KernelSpeedupCap; cost < floor {
			cost = floor
		}
	}
	return Result{Ret: ret, Cost: cost, Steps: in.steps, Output: in.out.String()}, nil
}

// NewArrayObject creates array storage holding the given element values
// and returns a pointer to it (the natural representation of an array
// kernel argument).
func NewArrayObject(name string, elem ctypes.Type, vals []Value) Value {
	obj := &Object{Name: name, Elem: ctypes.Resolve(elem), Elems: make([]Value, len(vals))}
	copy(obj.Elems, vals)
	return Value{Kind: VPtr, Obj: obj}
}

// callFunction executes fn with evaluated argument values.
func (in *Interp) callFunction(fn *cast.FuncDecl, args []Value, p ctoken.Pos) Value {
	if len(in.frames) >= in.opts.MaxDepth {
		in.fail(p, "call depth limit exceeded (%d) in %q", in.opts.MaxDepth, fn.Name)
	}
	if fn.Body == nil {
		in.fail(p, "call to undefined function %q", fn.Name)
	}
	if in.opts.CaptureCall != nil && fn.Name == in.opts.CaptureName {
		snap := make([]Value, len(args))
		for i, a := range args {
			snap[i] = a.DeepCopy()
		}
		in.opts.CaptureCall(snap)
	}
	if cf := in.compiledFor(fn); cf != nil {
		return in.callCompiled(cf, fn, args, p)
	}
	fr := newFrame(fn.Name)
	in.bindParams(fr, fn, args, p)
	in.frames = append(in.frames, fr)
	prevPart, prevShared := in.partitions, in.partitionsShared
	in.partitions = gatherPartitions(fn)
	in.partitionsShared = false
	in.addCost(costCall)

	dataflow := hasDataflow(fn)
	if dataflow && in.opts.Mode == FPGA {
		in.execDataflowBody(fn.Body)
	} else {
		in.execBlock(fn.Body)
	}

	in.partitions, in.partitionsShared = prevPart, prevShared
	ret := fr.retVal
	in.frames = in.frames[:len(in.frames)-1]
	return ret
}

// compiledFor returns the compiled form of fn when the fast path is on
// and the function compiles (nil otherwise: tree walk).
func (in *Interp) compiledFor(fn *cast.FuncDecl) *compiledFunc {
	if in.opts.Code == nil {
		return nil
	}
	cf := in.opts.Code.get(in.unit, fn, in.opts.CodeKey)
	if cf.fallback {
		return nil
	}
	return cf
}

// callCompiled is callFunction's compiled-code twin: same frame
// discipline, same cost and partition accounting, but locals live in a
// flat slot array instead of scope maps.
func (in *Interp) callCompiled(cf *compiledFunc, fn *cast.FuncDecl, args []Value, p ctoken.Pos) Value {
	fr := &frame{fn: fn.Name}
	in.bindParamsSlots(fr, cf, fn, args, p)
	in.frames = append(in.frames, fr)
	prevPart, prevShared := in.partitions, in.partitionsShared
	in.partitions = cf.parts
	in.partitionsShared = true
	in.addCost(costCall)

	if cf.dataflow && in.opts.Mode == FPGA {
		cf.runDataflow(in, fr)
	} else {
		cf.run(in, fr)
	}

	in.partitions, in.partitionsShared = prevPart, prevShared
	ret := fr.retVal
	in.frames = in.frames[:len(in.frames)-1]
	return ret
}

// funcOf resolves a function name against the unit, memoized. Compiled
// call sites resolve callees by name at runtime (instead of baking in a
// *cast.FuncDecl at compile time) so code compiled for one unit stays
// correct inside structure-sharing sibling units whose edited functions
// are fresh declarations.
func (in *Interp) funcOf(name string) *cast.FuncDecl {
	if fn, ok := in.fnCache[name]; ok {
		return fn
	}
	if in.fnCache == nil {
		in.fnCache = map[string]*cast.FuncDecl{}
	}
	fn := in.unit.Func(name)
	in.fnCache[name] = fn
	return fn
}

// bindParamsSlots is bindParams for a compiled frame: identical checks,
// coercions, and profile notes, but bindings land in the flat slot
// array at the compiler-assigned parameter slots.
func (in *Interp) bindParamsSlots(fr *frame, cf *compiledFunc, fn *cast.FuncDecl, args []Value, p ctoken.Pos) {
	if len(args) != len(fn.Params) {
		in.fail(p, "call to %q with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	fr.slots = make([]*binding, cf.nslots)
	for i, prm := range fn.Params {
		rt := ctypes.Resolve(prm.Type)
		v := args[i]
		if arr, isArr := rt.(ctypes.Array); isArr {
			// Array parameters are pointers under the hood.
			rt = ctypes.Pointer{Elem: arr.Elem}
		}
		obj := &Object{Name: prm.Name, Elem: rt, Elems: []Value{in.coerce(v, rt)}}
		fr.slots[cf.paramSlots[i]] = &binding{lv: lvalue{obj: obj, declared: rt}, typ: prm.Type, isLV: true}
		if in.opts.Profile {
			if v.Kind == VInt {
				in.noteProfile(fn.Name, prm.Name, v.Int)
			}
		}
	}
}

// bindParams defines parameter bindings in the new frame.
func (in *Interp) bindParams(fr *frame, fn *cast.FuncDecl, args []Value, p ctoken.Pos) {
	if len(args) != len(fn.Params) {
		in.fail(p, "call to %q with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	for i, prm := range fn.Params {
		rt := ctypes.Resolve(prm.Type)
		v := args[i]
		if _, isArr := rt.(ctypes.Array); isArr {
			// Array parameters are pointers under the hood.
			rt = ctypes.Pointer{Elem: rt.(ctypes.Array).Elem}
		}
		obj := &Object{Name: prm.Name, Elem: rt, Elems: []Value{in.coerce(v, rt)}}
		fr.define(prm.Name, &binding{lv: lvalue{obj: obj, declared: rt}, typ: prm.Type, isLV: true})
		if in.opts.Profile {
			if v.Kind == VInt {
				in.noteProfile(fn.Name, prm.Name, v.Int)
			}
		}
	}
}

// callMethod executes a struct member function with the given receiver
// storage. Field names resolve against the receiver.
func (in *Interp) callMethod(fn *cast.FuncDecl, recv lvalue, st *ctypes.Struct, argExprs []cast.Expr, p ctoken.Pos) Value {
	args := make([]Value, len(argExprs))
	for i, a := range argExprs {
		args[i] = in.evalArg(a, fn.Params[i].Type)
	}
	if len(in.frames) >= in.opts.MaxDepth {
		in.fail(p, "call depth limit exceeded in method %q", fn.Name)
	}
	fr := newFrame(st.Tag + "::" + fn.Name)
	fr.receiver = &recv
	fr.recvType = st
	in.bindParams(fr, fn, args, p)
	in.frames = append(in.frames, fr)
	in.addCost(costCall)
	in.execBlock(fn.Body)
	ret := fr.retVal
	in.frames = in.frames[:len(in.frames)-1]
	return ret
}

func (in *Interp) top() *frame { return in.frames[len(in.frames)-1] }

// noteProfile records an observed integer value for func.var.
func (in *Interp) noteProfile(fn, name string, v int64) {
	key := fn + "." + name
	r, ok := in.Profiles[key]
	if !ok {
		r = &Range{}
		in.Profiles[key] = r
	}
	r.Note(v)
}

// recordBranch notes a (site, outcome) coverage event.
func (in *Interp) recordBranch(site int, taken bool) {
	if !in.opts.Coverage || site < 0 || 2*site+1 >= len(in.CoverageBits) {
		return
	}
	idx := 2 * site
	if taken {
		idx++
	}
	in.CoverageBits[idx] = true
}

// CoverageCount returns the number of covered branch outcomes.
func (in *Interp) CoverageCount() int {
	n := 0
	for _, b := range in.CoverageBits {
		if b {
			n++
		}
	}
	return n
}
