package interp

import (
	"math"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/ctypes"
)

func TestCustomFloatTruncation(t *testing.T) {
	// fpga_float<8,23> carries a 23-bit mantissa (IEEE single): storing
	// 1/3 into it on the fabric loses the double-precision tail.
	src := `
fpga_float<8,23> g;
double f(double x) {
    g = x;
    return g;
}`
	u := cparser.MustParse(src)
	fp, _ := New(u, Options{Mode: FPGA})
	res, err := fp.CallKernel("f", []Value{FloatValue(1.0 / 3.0)})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Ret.AsFloat()
	if got == 1.0/3.0 {
		t.Error("23-bit mantissa should lose precision vs float64")
	}
	if math.Abs(got-1.0/3.0) > 1e-6 {
		t.Errorf("truncation too aggressive: %g", got)
	}
	// The wide default float<8,71> keeps full precision.
	wide := cparser.MustParse(`
fpga_float<8,71> g;
double f(double x) {
    g = x;
    return g;
}`)
	fpw, _ := New(wide, Options{Mode: FPGA})
	res, _ = fpw.CallKernel("f", []Value{FloatValue(1.0 / 3.0)})
	if res.Ret.AsFloat() != 1.0/3.0 {
		t.Error("71-bit mantissa must not truncate float64 values")
	}
}

func TestPointerArithmeticWalk(t *testing.T) {
	src := `
int sum(int a[8]) {
    int *p = &a[0];
    int s = 0;
    for (int i = 0; i < 8; i++) {
        s += *p;
        p++;
    }
    return s;
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	vals := make([]Value, 8)
	for i := range vals {
		vals[i] = IntValue(int64(i + 1))
	}
	arr := NewArrayObject("a", ctypes.IntT, vals)
	res, err := in.CallKernel("sum", []Value{arr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.AsInt() != 36 {
		t.Errorf("pointer walk sum = %d", res.Ret.AsInt())
	}
}

func TestPointerDifferenceAndComparison(t *testing.T) {
	src := `
int f(int a[8]) {
    int *lo = &a[1];
    int *hi = &a[6];
    int d = hi - lo;
    if (lo < hi) { d += 100; }
    if (lo == hi) { d += 1000; }
    return d;
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	arr := NewArrayObject("a", ctypes.IntT, make([]Value, 8))
	res, err := in.CallKernel("f", []Value{arr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.AsInt() != 105 {
		t.Errorf("pointer difference/compare = %d, want 105", res.Ret.AsInt())
	}
}

func TestMultiDimVLA(t *testing.T) {
	src := `
int f(int r, int c) {
    if (r < 1) { r = 1; }
    if (c < 1) { c = 1; }
    if (r > 8) { r = 8; }
    if (c > 8) { c = 8; }
    int m[r][c];
    int k = 0;
    for (int i = 0; i < r; i++) {
        for (int j = 0; j < c; j++) { m[i][j] = k; k++; }
    }
    return m[r - 1][c - 1];
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("f", []Value{IntValue(3), IntValue(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.AsInt() != 11 {
		t.Errorf("m[2][3] = %d, want 11", res.Ret.AsInt())
	}
}

func TestVLAForbiddenOnFPGA(t *testing.T) {
	src := `
int f(int n) {
    if (n < 1) { n = 1; }
    if (n > 8) { n = 8; }
    int buf[n];
    buf[0] = 7;
    return buf[0];
}`
	u := cparser.MustParse(src)
	fp, _ := New(u, Options{Mode: FPGA})
	if _, err := fp.CallKernel("f", []Value{IntValue(4)}); err == nil {
		t.Error("VLA must fault under fabric semantics")
	}
	cpu, _ := New(u, Options{Mode: CPU})
	if _, err := cpu.CallKernel("f", []Value{IntValue(4)}); err != nil {
		t.Errorf("VLA must work under CPU semantics: %v", err)
	}
}

func TestCoverageTernaryAndSwitch(t *testing.T) {
	src := `
int f(int x) {
    int sign = x < 0 ? -1 : 1;
    switch (x % 3) {
    case 0:
        return sign;
    case 1:
        return sign * 2;
    default:
        return sign * 3;
    }
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{Coverage: true})
	for _, v := range []int64{-3, 1, 5, 0} {
		if _, err := in.CallKernel("f", []Value{IntValue(v)}); err != nil {
			t.Fatal(err)
		}
	}
	// Ternary both outcomes + three switch arms = 5 outcomes at least.
	if got := in.CoverageCount(); got < 5 {
		t.Errorf("coverage outcomes %d, want >= 5", got)
	}
}

func TestFormatCEdgeCases(t *testing.T) {
	cases := []struct {
		format string
		args   []Value
		want   string
	}{
		{"plain", nil, "plain"},
		{"%d%%", []Value{IntValue(5)}, "5%"},
		{"%05d", []Value{IntValue(42)}, "42"}, // width ignored, value kept
		{"%g!", []Value{FloatValue(0.5)}, "0.5!"},
		{"%c", []Value{IntValue(88)}, "X"},
		{"missing %d %d", []Value{IntValue(1)}, "missing 1 0"},
		{"trailing %", []Value{}, "trailing %"},
	}
	for _, c := range cases {
		if got := formatC(c.format, c.args); got != c.want {
			t.Errorf("formatC(%q) = %q, want %q", c.format, got, c.want)
		}
	}
}

func TestStructReturnByValue(t *testing.T) {
	src := `
struct P { int x; int y; };
struct P mk(int a, int b) {
    struct P p;
    p.x = a;
    p.y = b;
    return p;
}
int f() {
    struct P q = mk(3, 4);
    struct P r = mk(5, 6);
    return q.x * 1000 + r.y;
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.AsInt() != 3006 {
		t.Errorf("struct return = %d, want 3006", res.Ret.AsInt())
	}
}

func TestGlobalArrayInitializerList(t *testing.T) {
	src := `
int table[4] = {10, 20, 30, 40};
int f(int i) {
    if (i < 0) { i = 0; }
    if (i > 3) { i = 3; }
    return table[i];
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("f", []Value{IntValue(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.AsInt() != 30 {
		t.Errorf("table[2] = %d", res.Ret.AsInt())
	}
}

func TestMathBuiltins(t *testing.T) {
	src := `
double f(double x) {
    double a = sqrt(x);
    double b = fabs(0.0 - a);
    double c = pow(b, 2.0);
    double d = fmin(c, 100.0) + fmax(0.5, 0.25);
    return floor(d) + ceil(0.25);
}`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("f", []Value{FloatValue(9.0)})
	if err != nil {
		t.Fatal(err)
	}
	// sqrt(9)=3, pow=9, +0.5 => 9.5, floor=9, +ceil(0.25)=1 => 10
	if res.Ret.AsFloat() != 10 {
		t.Errorf("math chain = %g, want 10", res.Ret.AsFloat())
	}
}

func TestStepLimitMessage(t *testing.T) {
	u := cparser.MustParse(`int f() { while (1) { } return 0; }`)
	in, _ := New(u, Options{MaxSteps: 1000})
	_, err := in.CallKernel("f", nil)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("want step-limit error, got %v", err)
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	src := `
int helper(int x);
int caller(int y) { return helper(y) + 1; }
int helper(int x) { return x * 2; }`
	u := cparser.MustParse(src)
	in, _ := New(u, Options{})
	res, err := in.CallKernel("caller", []Value{IntValue(10)})
	if err != nil {
		t.Fatalf("prototype resolution: %v", err)
	}
	if res.Ret.AsInt() != 21 {
		t.Errorf("caller(10) = %d, want 21", res.Ret.AsInt())
	}
}
