package interp_test

// Concurrency belt for the shared compiled-code cache: a single
// Codebase is pounded from many goroutines executing many programs in
// both modes at once, and every execution must still match the
// tree-walker outcome computed up front. Run under `go test -race`
// (the interp-diff-smoke CI job does) this doubles as the data-race
// proof for structure-sharing candidates evaluating concurrently
// against one compiled-code cache.

import (
	"sync"
	"testing"

	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/progen"
)

func TestCodebaseSharedConcurrently(t *testing.T) {
	const programs = 24
	const goroutines = 8

	type job struct {
		prog *progen.Program
		tc   fuzz.TestCase
		mode interp.Mode
		want string
	}
	var jobs []job
	for seed := 0; seed < programs; seed++ {
		prog, err := progen.Generate(progen.Options{Seed: int64(seed), Clean: seed%2 == 0})
		if err != nil {
			continue
		}
		sp, err := fuzz.SpecOf(prog.Unit, prog.Kernel)
		if err != nil {
			continue
		}
		tc := diffCase(sp, int64(seed))
		p := &prog
		for _, mode := range []interp.Mode{interp.CPU, interp.FPGA} {
			opts := interp.Options{Mode: mode, Coverage: true, Profile: true}
			jobs = append(jobs, job{p, tc.Clone(), mode, diffOutcome(p, tc, opts)})
		}
	}
	if len(jobs) < programs {
		t.Fatalf("only %d jobs generated", len(jobs))
	}

	code := interp.NewCodebase()
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine walks the job list from a different offset so
			// compilations of the same function race from the first round.
			for i := 0; i < len(jobs); i++ {
				j := jobs[(i+g*5)%len(jobs)]
				opts := interp.Options{Mode: j.mode, Coverage: true, Profile: true, Code: code}
				if got := diffOutcome(j.prog, j.tc.Clone(), opts); got != j.want {
					select {
					case errs <- j.prog.Kernel + ": compiled outcome diverged under contention:\n--- tree ---\n" + j.want + "\n--- vm ---\n" + got:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if code.Size() == 0 {
		t.Fatal("shared codebase compiled nothing")
	}
	t.Logf("shared codebase: %d compiled functions (%d fallbacks) across %d jobs x %d goroutines",
		code.Size(), code.Fallbacks(), len(jobs), goroutines)
}
