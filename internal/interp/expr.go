package interp

import (
	"math"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// eval evaluates an expression to a value.
func (in *Interp) eval(e cast.Expr) Value {
	in.step(e.Pos())
	switch x := e.(type) {
	case *cast.IntLit:
		return IntValue(x.Value)
	case *cast.FloatLit:
		return FloatValue(x.Value)
	case *cast.CharLit:
		return Value{Kind: VInt, Int: int64(x.Value), Width: 8}
	case *cast.BoolLit:
		return BoolValue(x.Value)
	case *cast.StrLit:
		// Strings only appear as printf formats in the subset.
		return Value{Kind: VVoid}
	case *cast.Ident:
		lv, b, ok := in.lvalueOf(x)
		if !ok {
			in.fail(x.P, "undefined identifier %q", x.Name)
		}
		if b != nil && !b.isLV {
			// Array name decays to a pointer.
			return Value{Kind: VPtr, Obj: b.obj}
		}
		in.addCost(costLoad)
		return lv.load()
	case *cast.Unary:
		return in.evalUnary(x)
	case *cast.Postfix:
		lv := in.mustLvalue(x.X)
		old := lv.load()
		delta := int64(1)
		if x.Op == ctoken.DEC {
			delta = -1
		}
		in.storeArith(lv, old, delta, x.P)
		in.addCost(costIAdd)
		return old
	case *cast.Binary:
		return in.evalBinary(x)
	case *cast.Assign:
		return in.evalAssign(x)
	case *cast.Cond:
		in.addCost(costBranch)
		c := in.eval(x.C).Truthy()
		in.recordBranch(x.BranchID, c)
		if c {
			return in.eval(x.T)
		}
		return in.eval(x.F)
	case *cast.Call:
		return in.evalCall(x)
	case *cast.Index:
		lv := in.indexLvalue(x)
		// An index into a multi-dimensional array yields a sub-array,
		// which decays to a pointer at the flattened offset.
		if t := in.typeOfExpr(x); t != nil {
			if _, isArr := ctypes.Resolve(t).(ctypes.Array); isArr {
				return Value{Kind: VPtr, Obj: lv.obj, Off: lv.off}
			}
		}
		in.addCost(costLoad)
		return lv.load()
	case *cast.Member:
		if lv, ok := in.tryMemberLvalue(x); ok {
			in.addCost(costLoad)
			return lv.load()
		}
		// Member of a temporary (e.g. call().field).
		base := in.eval(x.X)
		return in.memberOfValue(base, x)
	case *cast.Cast:
		return in.evalCast(x)
	case *cast.SizeofType:
		return IntValue(int64(SizeofBytes(x.T)))
	case *cast.SizeofExpr:
		t := in.typeOfExpr(x.X)
		if t == nil {
			return IntValue(8)
		}
		return IntValue(int64(SizeofBytes(t)))
	case *cast.InitList:
		if st, ok := x.Type.(*ctypes.Struct); ok {
			return in.structFromInitList(st, x)
		}
		in.fail(x.P, "initializer list outside declaration")
	}
	in.fail(e.Pos(), "unsupported expression %T", e)
	return Value{}
}

// SizeofBytes returns the byte size of a type (minimum 1).
func SizeofBytes(t ctypes.Type) int {
	b := ctypes.Resolve(t).Bits()
	if b <= 0 {
		return 8 // pointers / unknown
	}
	n := (b + 7) / 8
	if n < 1 {
		n = 1
	}
	return n
}

// ---------------------------------------------------------------------------
// Lvalues

// lvalueOf resolves an identifier to its binding. The bool result is false
// when the name is undefined.
func (in *Interp) lvalueOf(id *cast.Ident) (lvalue, *binding, bool) {
	if len(in.frames) > 0 {
		fr := in.top()
		if b, ok := fr.lookup(id.Name); ok {
			return b.lv, b, true
		}
		// Receiver fields.
		if fr.receiver != nil && fr.recvType != nil {
			if i := fr.recvType.FieldIndex(id.Name); i >= 0 {
				return fr.receiver.field(i, fr.recvType.Fields[i].Type), nil, true
			}
		}
	}
	if b, ok := in.globals[id.Name]; ok {
		return b.lv, b, true
	}
	return lvalue{}, nil, false
}

// mustLvalue resolves an expression that must designate storage.
func (in *Interp) mustLvalue(e cast.Expr) lvalue {
	switch x := e.(type) {
	case *cast.Ident:
		lv, b, ok := in.lvalueOf(x)
		if !ok {
			in.fail(x.P, "undefined identifier %q", x.Name)
		}
		if b != nil && !b.isLV {
			in.fail(x.P, "array %q is not assignable", x.Name)
		}
		return lv
	case *cast.Index:
		return in.indexLvalue(x)
	case *cast.Member:
		lv, ok := in.tryMemberLvalue(x)
		if !ok {
			in.fail(x.P, "member %q of non-lvalue", x.Field)
		}
		return lv
	case *cast.Unary:
		if x.Op == ctoken.MUL {
			p := in.eval(x.X)
			if p.Kind != VPtr || p.Obj == nil {
				in.fail(x.P, "dereference of null or non-pointer")
			}
			in.checkBounds(p, x.P)
			return lvalue{obj: p.Obj, off: p.Off, declared: p.Obj.Elem}
		}
	case *cast.Cast:
		// (T)x as lvalue: ignore the cast (write-through).
		return in.mustLvalue(x.X)
	}
	in.fail(e.Pos(), "expression is not assignable (%T)", e)
	return lvalue{}
}

func (in *Interp) checkBounds(p Value, pos ctoken.Pos) {
	if p.Obj == nil {
		in.fail(pos, "null pointer access")
	}
	if p.Obj.Freed {
		in.fail(pos, "use after free of %q", p.Obj.Name)
	}
	if p.Off < 0 || p.Off >= len(p.Obj.Elems) {
		in.fail(pos, "index %d out of bounds for %q (size %d)", p.Off, p.Obj.Name, len(p.Obj.Elems))
	}
}

// indexLvalue computes the storage cell of a[i] (with multi-dimensional
// row-major flattening for nested arrays).
func (in *Interp) indexLvalue(ix *cast.Index) lvalue {
	base, stride := in.evalIndexBase(ix.X)
	idx := in.eval(ix.Idx).AsInt()
	in.addCost(costIAdd)
	p := base
	p.Off += int(idx) * stride
	in.checkBounds(p, ix.P)
	return lvalue{obj: p.Obj, off: p.Off, declared: p.Obj.Elem}
}

// evalIndexBase evaluates the base of an index expression to a pointer,
// returning the element stride in flattened slots: indexing the outer
// dimension of int[2][3] moves 3 slots at a time.
func (in *Interp) evalIndexBase(e cast.Expr) (Value, int) {
	t := in.typeOfExpr(e)
	stride := 1
	if t != nil {
		switch u := ctypes.Resolve(t).(type) {
		case ctypes.Array:
			if inner, ok := ctypes.Resolve(u.Elem).(ctypes.Array); ok {
				n, _ := flattenArray(inner)
				stride = n
			}
		case ctypes.Pointer:
			if inner, ok := ctypes.Resolve(u.Elem).(ctypes.Array); ok {
				n, _ := flattenArray(inner)
				stride = n
			}
		}
	}
	v := in.eval(e)
	if v.Kind != VPtr {
		in.fail(e.Pos(), "indexed expression is not an array or pointer")
	}
	return v, stride
}

// tryMemberLvalue resolves x.f / p->f when the base designates storage.
func (in *Interp) tryMemberLvalue(m *cast.Member) (lvalue, bool) {
	if m.Arrow {
		p := in.eval(m.X)
		if p.Kind != VPtr {
			in.fail(m.P, "-> on non-pointer")
		}
		in.checkBounds(p, m.P)
		st, ok := ctypes.Resolve(p.Obj.Elem).(*ctypes.Struct)
		if !ok {
			in.fail(m.P, "-> on pointer to non-struct")
		}
		i := st.FieldIndex(m.Field)
		if i < 0 {
			in.fail(m.P, "no field %q in struct %s", m.Field, st.Tag)
		}
		base := lvalue{obj: p.Obj, off: p.Off, declared: st}
		return base.field(i, st.Fields[i].Type), true
	}
	// Dot access: base must itself be an lvalue (or stream/struct value).
	switch bx := m.X.(type) {
	case *cast.Ident, *cast.Index, *cast.Member:
		_ = bx
		base := in.mustLvalue(m.X)
		st, ok := ctypes.Resolve(in.declaredOf(base)).(*ctypes.Struct)
		if !ok {
			return lvalue{}, false
		}
		i := st.FieldIndex(m.Field)
		if i < 0 {
			in.fail(m.P, "no field %q in struct %s", m.Field, st.Tag)
		}
		return base.field(i, st.Fields[i].Type), true
	}
	return lvalue{}, false
}

func (in *Interp) declaredOf(lv lvalue) ctypes.Type {
	if lv.declared != nil {
		return lv.declared
	}
	return lv.obj.Elem
}

// memberOfValue extracts a field from a struct temporary.
func (in *Interp) memberOfValue(base Value, m *cast.Member) Value {
	if base.Kind == VStruct && base.Struct != nil {
		if i := base.Struct.FieldIndex(m.Field); i >= 0 {
			return base.Fields[i]
		}
	}
	in.fail(m.P, "no field %q on value", m.Field)
	return Value{}
}

// ---------------------------------------------------------------------------
// Operators

func (in *Interp) evalUnary(u *cast.Unary) Value {
	switch u.Op {
	case ctoken.SUB:
		v := in.eval(u.X)
		in.addCost(costIAdd)
		if v.Kind == VFloat {
			v.Float = -v.Float
			return v
		}
		v.Int = in.wrap(-v.Int, v)
		return v
	case ctoken.NOT:
		v := in.eval(u.X)
		in.addCost(costIAdd)
		return BoolValue(v.IsZero())
	case ctoken.TILD:
		v := in.eval(u.X)
		in.addCost(costIAdd)
		v.Int = in.wrap(^v.Int, v)
		return v
	case ctoken.MUL:
		p := in.eval(u.X)
		if p.Kind != VPtr {
			in.fail(u.P, "dereference of non-pointer")
		}
		in.checkBounds(p, u.P)
		in.addCost(costLoad)
		return p.Obj.Elems[p.Off]
	case ctoken.AND:
		lv := in.mustLvalue(u.X)
		if len(lv.path) != 0 {
			in.fail(u.P, "address of struct field is outside the subset")
		}
		return Value{Kind: VPtr, Obj: lv.obj, Off: lv.off}
	case ctoken.INC, ctoken.DEC:
		lv := in.mustLvalue(u.X)
		old := lv.load()
		delta := int64(1)
		if u.Op == ctoken.DEC {
			delta = -1
		}
		in.storeArith(lv, old, delta, u.P)
		in.addCost(costIAdd)
		return lv.load()
	}
	in.fail(u.P, "unsupported unary operator %s", u.Op)
	return Value{}
}

// storeArith stores old+delta into lv, handling pointers and profiling.
func (in *Interp) storeArith(lv lvalue, old Value, delta int64, pos ctoken.Pos) {
	switch old.Kind {
	case VPtr:
		old.Off += int(delta)
		lv.store(old)
	case VFloat:
		old.Float += float64(delta)
		lv.store(old)
	default:
		old.Int = in.wrap(old.Int+delta, old)
		lv.store(old)
		in.profileStore(lv, old)
	}
	in.addCost(costStore)
}

// wrap applies fixed-width wrapping in FPGA mode. In CPU mode values
// behave as int64 (the subjects stay within 64-bit ranges, matching C).
func (in *Interp) wrap(v int64, like Value) int64 {
	if in.opts.Mode == FPGA && like.Width > 0 && like.Width < 64 {
		return WrapInt(v, like.Width, like.Unsigned)
	}
	return v
}

func (in *Interp) profileStore(lv lvalue, v Value) {
	if !in.opts.Profile || v.Kind != VInt || len(in.frames) == 0 {
		return
	}
	in.noteProfile(in.top().fn, lv.obj.Name, v.Int)
}

func (in *Interp) evalBinary(b *cast.Binary) Value {
	// Short-circuit logical operators.
	switch b.Op {
	case ctoken.LAND:
		in.addCost(costBranch)
		if !in.eval(b.L).Truthy() {
			return BoolValue(false)
		}
		return BoolValue(in.eval(b.R).Truthy())
	case ctoken.LOR:
		in.addCost(costBranch)
		if in.eval(b.L).Truthy() {
			return BoolValue(true)
		}
		return BoolValue(in.eval(b.R).Truthy())
	}
	l := in.eval(b.L)
	r := in.eval(b.R)
	return in.applyBinary(b.Op, l, r, b.P)
}

func (in *Interp) applyBinary(op ctoken.Kind, l, r Value, pos ctoken.Pos) Value {
	// Pointer arithmetic and comparison.
	if l.Kind == VPtr || r.Kind == VPtr {
		return in.pointerBinary(op, l, r, pos)
	}
	isFloat := l.Kind == VFloat || r.Kind == VFloat
	if isFloat {
		lf, rf := l.AsFloat(), r.AsFloat()
		in.addCost(costForFloatOp(op))
		switch op {
		case ctoken.ADD:
			return in.floatResult(lf+rf, l, r)
		case ctoken.SUB:
			return in.floatResult(lf-rf, l, r)
		case ctoken.MUL:
			return in.floatResult(lf*rf, l, r)
		case ctoken.QUO:
			if rf == 0 {
				return in.floatResult(math.Inf(1), l, r)
			}
			return in.floatResult(lf/rf, l, r)
		case ctoken.LSS:
			return BoolValue(lf < rf)
		case ctoken.GTR:
			return BoolValue(lf > rf)
		case ctoken.LEQ:
			return BoolValue(lf <= rf)
		case ctoken.GEQ:
			return BoolValue(lf >= rf)
		case ctoken.EQL:
			return BoolValue(lf == rf)
		case ctoken.NEQ:
			return BoolValue(lf != rf)
		}
		in.fail(pos, "invalid float operator %s", op)
	}
	li, ri := l.Int, r.Int
	res := promote(l, r)
	in.addCost(costForIntOp(op))
	switch op {
	case ctoken.ADD:
		res.Int = li + ri
	case ctoken.SUB:
		res.Int = li - ri
	case ctoken.MUL:
		res.Int = li * ri
	case ctoken.QUO:
		if ri == 0 {
			in.fail(pos, "integer division by zero")
		}
		res.Int = li / ri
	case ctoken.REM:
		if ri == 0 {
			in.fail(pos, "integer modulo by zero")
		}
		res.Int = li % ri
	case ctoken.AND:
		res.Int = li & ri
	case ctoken.OR:
		res.Int = li | ri
	case ctoken.XOR:
		res.Int = li ^ ri
	case ctoken.SHL:
		res.Int = li << uint(ri&63)
	case ctoken.SHR:
		if l.Unsigned {
			res.Int = int64(uint64(li) >> uint(ri&63))
		} else {
			res.Int = li >> uint(ri&63)
		}
	case ctoken.LSS:
		return BoolValue(li < ri)
	case ctoken.GTR:
		return BoolValue(li > ri)
	case ctoken.LEQ:
		return BoolValue(li <= ri)
	case ctoken.GEQ:
		return BoolValue(li >= ri)
	case ctoken.EQL:
		return BoolValue(li == ri)
	case ctoken.NEQ:
		return BoolValue(li != ri)
	default:
		in.fail(pos, "invalid integer operator %s", op)
	}
	res.Int = in.wrap(res.Int, res)
	return res
}

// floatResult builds a float result, propagating the "synthesizable float"
// flag so FPGA precision reduction applies transitively.
func (in *Interp) floatResult(v float64, l, r Value) Value {
	out := FloatValue(v)
	out.FloatSyn = l.FloatSyn || r.FloatSyn
	if in.opts.Mode == FPGA && out.FloatSyn {
		// fpga_float<8,71> carries more mantissa than float64; treat as
		// exact. Narrower custom floats would round here.
		_ = v
	}
	return out
}

// promote computes the result carrier for integer ops: widest width wins,
// unsigned wins ties (C usual arithmetic conversions, simplified).
func promote(l, r Value) Value {
	out := l
	if r.Width > out.Width {
		out = r
	}
	if l.Width == r.Width && (l.Unsigned || r.Unsigned) {
		out.Unsigned = true
	}
	if out.Width < 32 {
		// C integer promotion to int.
		out.Width, out.Unsigned = 32, false
	}
	return out
}

func (in *Interp) pointerBinary(op ctoken.Kind, l, r Value, pos ctoken.Pos) Value {
	in.addCost(costIAdd)
	switch op {
	case ctoken.ADD:
		if l.Kind == VPtr {
			l.Off += int(r.AsInt())
			return l
		}
		r.Off += int(l.AsInt())
		return r
	case ctoken.SUB:
		if l.Kind == VPtr && r.Kind == VPtr {
			return IntValue(int64(l.Off - r.Off))
		}
		l.Off -= int(r.AsInt())
		return l
	case ctoken.EQL:
		return BoolValue(samePtr(l, r))
	case ctoken.NEQ:
		return BoolValue(!samePtr(l, r))
	case ctoken.LSS, ctoken.GTR, ctoken.LEQ, ctoken.GEQ:
		lo, ro := l.Off, r.Off
		switch op {
		case ctoken.LSS:
			return BoolValue(lo < ro)
		case ctoken.GTR:
			return BoolValue(lo > ro)
		case ctoken.LEQ:
			return BoolValue(lo <= ro)
		default:
			return BoolValue(lo >= ro)
		}
	}
	in.fail(pos, "invalid pointer operator %s", op)
	return Value{}
}

// samePtr compares pointers, treating integer zero as null.
func samePtr(l, r Value) bool {
	lNull := l.Kind != VPtr && l.AsInt() == 0 || l.Kind == VPtr && l.Obj == nil
	rNull := r.Kind != VPtr && r.AsInt() == 0 || r.Kind == VPtr && r.Obj == nil
	if lNull || rNull {
		return lNull && rNull
	}
	return l.Obj == r.Obj && l.Off == r.Off
}

func (in *Interp) evalAssign(a *cast.Assign) Value {
	lv := in.mustLvalue(a.L)
	var v Value
	if a.Op == ctoken.ASSIGN {
		v = in.evalArg(a.R, in.declaredOf(lv))
	} else {
		old := lv.load()
		r := in.eval(a.R)
		binOp := compoundToBinary(a.Op)
		v = in.applyBinary(binOp, old, r, a.P)
	}
	v = in.coerce(v, in.declaredOf(lv))
	lv.store(v.DeepCopy())
	in.addCost(costStore)
	in.profileStore(lv, v)
	return v
}

func compoundToBinary(op ctoken.Kind) ctoken.Kind {
	switch op {
	case ctoken.ADDASSIGN:
		return ctoken.ADD
	case ctoken.SUBASSIGN:
		return ctoken.SUB
	case ctoken.MULASSIGN:
		return ctoken.MUL
	case ctoken.QUOASSIGN:
		return ctoken.QUO
	case ctoken.REMASSIGN:
		return ctoken.REM
	case ctoken.ANDASSIGN:
		return ctoken.AND
	case ctoken.ORASSIGN:
		return ctoken.OR
	case ctoken.XORASSIGN:
		return ctoken.XOR
	case ctoken.SHLASSIGN:
		return ctoken.SHL
	case ctoken.SHRASSIGN:
		return ctoken.SHR
	}
	return op
}

// coerce converts a value to a declared type on store/pass/return.
func (in *Interp) coerce(v Value, t ctypes.Type) Value {
	if t == nil {
		return v
	}
	switch u := ctypes.Resolve(t).(type) {
	case ctypes.Int:
		out := Value{Kind: VInt, Int: v.AsInt(), Width: u.Width, Unsigned: u.Unsigned}
		// C narrows on store even on CPU.
		if u.Width < 64 {
			out.Int = WrapInt(out.Int, u.Width, u.Unsigned)
		}
		return out
	case ctypes.FPGAInt:
		out := Value{Kind: VInt, Int: v.AsInt(), Width: u.Width, Unsigned: u.Unsigned}
		if in.opts.Mode == FPGA {
			out.Int = WrapInt(out.Int, u.Width, u.Unsigned)
		}
		return out
	case ctypes.Bool:
		return Value{Kind: VInt, Int: boolToInt(v.Truthy()), Width: 1, Unsigned: true}
	case ctypes.Float:
		out := Value{Kind: VFloat, Float: v.AsFloat()}
		if u.FK == ctypes.F32 {
			out.Float = float64(float32(out.Float))
		}
		return out
	case ctypes.FPGAFloat:
		out := Value{Kind: VFloat, Float: v.AsFloat(), FloatSyn: true}
		if u.Mant < 52 {
			// Reduce mantissa precision to the custom width.
			out.Float = truncMantissa(out.Float, u.Mant)
		}
		return out
	case ctypes.Pointer:
		if v.Kind == VInt && v.Int == 0 {
			return Value{Kind: VPtr}
		}
		return v
	}
	return v
}

func truncMantissa(f float64, mant int) float64 {
	if mant >= 52 || f == 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		return f
	}
	bits := math.Float64bits(f)
	drop := uint(52 - mant)
	bits &^= (1 << drop) - 1
	return math.Float64frombits(bits)
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *Interp) evalCast(c *cast.Cast) Value {
	// (T*)malloc(...) — the canonical dynamic allocation form.
	if call, ok := c.X.(*cast.Call); ok {
		if id, ok := call.Fun.(*cast.Ident); ok && id.Name == "malloc" {
			return in.evalMalloc(c.To, call)
		}
	}
	v := in.eval(c.X)
	return in.coerce(v, c.To)
}
