package interp

import (
	"github.com/hetero/heterogen/internal/ctypes"
)

// lvalue designates a storage location: an element of an Object, possibly
// narrowed to a nested struct field by a field-index path.
type lvalue struct {
	obj  *Object
	off  int
	path []int
	// declared is the declared type at the location (after path), used to
	// wrap stores in FPGA mode.
	declared ctypes.Type
}

// load reads the current value at the location.
func (lv lvalue) load() Value {
	v := lv.obj.Elems[lv.off]
	for _, p := range lv.path {
		v = v.Fields[p]
	}
	return v
}

// store writes v into the location.
func (lv lvalue) store(v Value) {
	target := &lv.obj.Elems[lv.off]
	for _, p := range lv.path {
		target = &target.Fields[p]
	}
	*target = v
}

// field returns the lvalue of field index i within this struct location.
func (lv lvalue) field(i int, ft ctypes.Type) lvalue {
	out := lv
	out.path = append(append([]int{}, lv.path...), i)
	out.declared = ft
	return out
}

// scope is one lexical scope of local variables.
type scope struct {
	vars map[string]*binding
}

// binding associates a name with its storage and declared type. Reference
// parameters bind directly to the caller's storage.
type binding struct {
	lv   lvalue
	typ  ctypes.Type
	isLV bool // false for array bindings, which live as whole objects
	obj  *Object
}

// frame is one function activation.
type frame struct {
	fn       string
	scopes   []*scope
	receiver *lvalue // method receiver storage, or nil
	recvType *ctypes.Struct
	retVal   Value
	returned bool
	// slots is the flat local-variable array of a compiled-code frame
	// (compile.go): the compiler resolves every name to a slot index, so
	// compiled frames never touch the scope maps. Tree-walked frames
	// leave it nil.
	slots []*binding
}

func newFrame(fn string) *frame {
	return &frame{fn: fn, scopes: []*scope{{vars: map[string]*binding{}}}}
}

func (f *frame) push() { f.scopes = append(f.scopes, &scope{vars: map[string]*binding{}}) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *frame) define(name string, b *binding) {
	f.scopes[len(f.scopes)-1].vars[name] = b
}

func (f *frame) lookup(name string) (*binding, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if b, ok := f.scopes[i].vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}
