package interp

import (
	"fmt"
	"math"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// Expression compilation. Every evalOp performs the walker's eval step
// (in.step(e.Pos())) before its work; lvOps never step their own node
// (mustLvalue does not step), only the sub-expressions they evaluate.

func (c *compiler) eval(e cast.Expr) evalOp {
	pos := e.Pos()
	switch x := e.(type) {
	case *cast.IntLit:
		v := IntValue(x.Value)
		return func(in *Interp, fr *frame) Value { in.step(pos); return v }
	case *cast.FloatLit:
		v := FloatValue(x.Value)
		return func(in *Interp, fr *frame) Value { in.step(pos); return v }
	case *cast.CharLit:
		v := Value{Kind: VInt, Int: int64(x.Value), Width: 8}
		return func(in *Interp, fr *frame) Value { in.step(pos); return v }
	case *cast.BoolLit:
		v := BoolValue(x.Value)
		return func(in *Interp, fr *frame) Value { in.step(pos); return v }
	case *cast.StrLit:
		return func(in *Interp, fr *frame) Value { in.step(pos); return Value{Kind: VVoid} }
	case *cast.Ident:
		return c.identEval(x)
	case *cast.Unary:
		return c.unaryEval(x)
	case *cast.Postfix:
		lvO := c.lv(x.X)
		delta := int64(1)
		if x.Op == ctoken.DEC {
			delta = -1
		}
		p := x.P
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			lv := lvO(in, fr)
			old := lv.load()
			in.storeArith(lv, old, delta, p)
			in.addCost(costIAdd)
			return old
		}
	case *cast.Binary:
		return c.binaryEval(x)
	case *cast.Assign:
		return c.assignEval(x)
	case *cast.Cond:
		bid := x.BranchID
		cOp, tOp, fOp := c.eval(x.C), c.eval(x.T), c.eval(x.F)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			in.addCost(costBranch)
			cv := cOp(in, fr).Truthy()
			in.recordBranch(bid, cv)
			if cv {
				return tOp(in, fr)
			}
			return fOp(in, fr)
		}
	case *cast.Call:
		return c.callEval(x)
	case *cast.Index:
		lvO := c.indexLv(x)
		decay := false
		if t := c.ctTypeOf(x); t != nil {
			_, decay = ctypes.Resolve(t).(ctypes.Array)
		}
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			lv := lvO(in, fr)
			if decay {
				return Value{Kind: VPtr, Obj: lv.obj, Off: lv.off}
			}
			in.addCost(costLoad)
			return lv.load()
		}
	case *cast.Member:
		return c.memberEval(x)
	case *cast.Cast:
		return c.castEval(x)
	case *cast.SizeofType:
		v := IntValue(int64(SizeofBytes(x.T)))
		return func(in *Interp, fr *frame) Value { in.step(pos); return v }
	case *cast.SizeofExpr:
		n := int64(8)
		if t := c.ctTypeOf(x.X); t != nil {
			n = int64(SizeofBytes(t))
		}
		v := IntValue(n)
		return func(in *Interp, fr *frame) Value { in.step(pos); return v }
	case *cast.InitList:
		// Expression-position initializer lists assert the node's own
		// (unresolved) type annotation, unlike evalInit.
		if st, ok := x.Type.(*ctypes.Struct); ok {
			fieldsOp := c.structInit(st, x)
			return func(in *Interp, fr *frame) Value {
				in.step(pos)
				return fieldsOp(in, fr)
			}
		}
		p := x.P
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			in.fail(p, "initializer list outside declaration")
			return Value{}
		}
	}
	ee := e
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		in.fail(pos, "unsupported expression %T", ee)
		return Value{}
	}
}

func (c *compiler) identEval(x *cast.Ident) evalOp {
	pos, name := x.P, x.Name
	if s, ok := c.lookup(name); ok {
		slot := s.slot
		if s.isArray {
			return func(in *Interp, fr *frame) Value {
				in.step(pos)
				return Value{Kind: VPtr, Obj: fr.slots[slot].obj}
			}
		}
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			in.addCost(costLoad)
			return fr.slots[slot].lv.load()
		}
	}
	if _, ok := c.globals[name]; ok {
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			b := in.globals[name]
			if !b.isLV {
				return Value{Kind: VPtr, Obj: b.obj}
			}
			in.addCost(costLoad)
			return b.lv.load()
		}
	}
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		in.fail(pos, "undefined identifier %q", name)
		return Value{}
	}
}

func (c *compiler) unaryEval(u *cast.Unary) evalOp {
	pos, p := u.Pos(), u.P
	switch u.Op {
	case ctoken.SUB:
		xOp := c.eval(u.X)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			v := xOp(in, fr)
			in.addCost(costIAdd)
			if v.Kind == VFloat {
				v.Float = -v.Float
				return v
			}
			v.Int = in.wrap(-v.Int, v)
			return v
		}
	case ctoken.NOT:
		xOp := c.eval(u.X)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			v := xOp(in, fr)
			in.addCost(costIAdd)
			return BoolValue(v.IsZero())
		}
	case ctoken.TILD:
		xOp := c.eval(u.X)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			v := xOp(in, fr)
			in.addCost(costIAdd)
			v.Int = in.wrap(^v.Int, v)
			return v
		}
	case ctoken.MUL:
		xOp := c.eval(u.X)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			pv := xOp(in, fr)
			if pv.Kind != VPtr {
				in.fail(p, "dereference of non-pointer")
			}
			in.checkBounds(pv, p)
			in.addCost(costLoad)
			return pv.Obj.Elems[pv.Off]
		}
	case ctoken.AND:
		lvO := c.lv(u.X)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			lv := lvO(in, fr)
			if len(lv.path) != 0 {
				in.fail(p, "address of struct field is outside the subset")
			}
			return Value{Kind: VPtr, Obj: lv.obj, Off: lv.off}
		}
	case ctoken.INC, ctoken.DEC:
		lvO := c.lv(u.X)
		delta := int64(1)
		if u.Op == ctoken.DEC {
			delta = -1
		}
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			lv := lvO(in, fr)
			old := lv.load()
			in.storeArith(lv, old, delta, p)
			in.addCost(costIAdd)
			return lv.load()
		}
	}
	op := u.Op
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		in.fail(p, "unsupported unary operator %s", op)
		return Value{}
	}
}

func (c *compiler) binaryEval(b *cast.Binary) evalOp {
	pos, p := b.Pos(), b.P
	lOp := c.eval(b.L)
	rOp := c.eval(b.R)
	switch b.Op {
	case ctoken.LAND:
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			in.addCost(costBranch)
			if !lOp(in, fr).Truthy() {
				return BoolValue(false)
			}
			return BoolValue(rOp(in, fr).Truthy())
		}
	case ctoken.LOR:
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			in.addCost(costBranch)
			if lOp(in, fr).Truthy() {
				return BoolValue(true)
			}
			return BoolValue(rOp(in, fr).Truthy())
		}
	}
	op := b.Op
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		l := lOp(in, fr)
		r := rOp(in, fr)
		return in.applyBinary(op, l, r, p)
	}
}

func (c *compiler) assignEval(a *cast.Assign) evalOp {
	pos, p := a.Pos(), a.P
	lvO := c.lv(a.L)
	rOp := c.eval(a.R)
	if a.Op == ctoken.ASSIGN {
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			lv := lvO(in, fr)
			// evalArg against the destination's declared type: Ref
			// targets alias, everything else copies struct values.
			pt := in.declaredOf(lv)
			v := rOp(in, fr)
			if _, isRef := pt.(ctypes.Ref); !isRef && v.Kind == VStruct {
				v = v.DeepCopy()
			}
			v = in.coerce(v, in.declaredOf(lv))
			lv.store(v.DeepCopy())
			in.addCost(costStore)
			in.profileStore(lv, v)
			return v
		}
	}
	binOp := compoundToBinary(a.Op)
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		lv := lvO(in, fr)
		old := lv.load()
		r := rOp(in, fr)
		v := in.applyBinary(binOp, old, r, p)
		v = in.coerce(v, in.declaredOf(lv))
		lv.store(v.DeepCopy())
		in.addCost(costStore)
		in.profileStore(lv, v)
		return v
	}
}

func (c *compiler) castEval(x *cast.Cast) evalOp {
	pos := x.Pos()
	// (T*)malloc(...) — the canonical dynamic allocation form; the
	// inner call node is never stepped.
	if call, ok := x.X.(*cast.Call); ok {
		if id, ok := call.Fun.(*cast.Ident); ok && id.Name == "malloc" {
			return c.mallocOp(pos, x.To, call)
		}
	}
	xOp := c.eval(x.X)
	to := x.To
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		v := xOp(in, fr)
		return in.coerce(v, to)
	}
}

// ---------------------------------------------------------------------------
// Lvalues

func (c *compiler) lv(e cast.Expr) lvOp {
	switch x := e.(type) {
	case *cast.Ident:
		pos, name := x.P, x.Name
		if s, ok := c.lookup(name); ok {
			slot := s.slot
			if s.isArray {
				return func(in *Interp, fr *frame) lvalue {
					in.fail(pos, "array %q is not assignable", name)
					return lvalue{}
				}
			}
			return func(in *Interp, fr *frame) lvalue {
				return fr.slots[slot].lv
			}
		}
		if _, ok := c.globals[name]; ok {
			return func(in *Interp, fr *frame) lvalue {
				b := in.globals[name]
				if !b.isLV {
					in.fail(pos, "array %q is not assignable", name)
				}
				return b.lv
			}
		}
		return func(in *Interp, fr *frame) lvalue {
			in.fail(pos, "undefined identifier %q", name)
			return lvalue{}
		}
	case *cast.Index:
		return c.indexLv(x)
	case *cast.Member:
		return c.memberLv(x)
	case *cast.Unary:
		if x.Op == ctoken.MUL {
			xOp := c.eval(x.X)
			p := x.P
			return func(in *Interp, fr *frame) lvalue {
				pv := xOp(in, fr)
				if pv.Kind != VPtr || pv.Obj == nil {
					in.fail(p, "dereference of null or non-pointer")
				}
				in.checkBounds(pv, p)
				return lvalue{obj: pv.Obj, off: pv.Off, declared: pv.Obj.Elem}
			}
		}
	case *cast.Cast:
		// (T)x as lvalue: ignore the cast (write-through).
		return c.lv(x.X)
	}
	pos := e.Pos()
	ee := e
	return func(in *Interp, fr *frame) lvalue {
		in.fail(pos, "expression is not assignable (%T)", ee)
		return lvalue{}
	}
}

func (c *compiler) indexLv(ix *cast.Index) lvOp {
	stride := 1
	if t := c.ctTypeOf(ix.X); t != nil {
		switch u := ctypes.Resolve(t).(type) {
		case ctypes.Array:
			if inner, ok := ctypes.Resolve(u.Elem).(ctypes.Array); ok {
				n, _ := flattenArray(inner)
				stride = n
			}
		case ctypes.Pointer:
			if inner, ok := ctypes.Resolve(u.Elem).(ctypes.Array); ok {
				n, _ := flattenArray(inner)
				stride = n
			}
		}
	}
	baseOp := c.eval(ix.X)
	idxOp := c.eval(ix.Idx)
	basePos := ix.X.Pos()
	p := ix.P
	return func(in *Interp, fr *frame) lvalue {
		v := baseOp(in, fr)
		if v.Kind != VPtr {
			in.fail(basePos, "indexed expression is not an array or pointer")
		}
		idx := idxOp(in, fr).AsInt()
		in.addCost(costIAdd)
		pv := v
		pv.Off += int(idx) * stride
		in.checkBounds(pv, p)
		return lvalue{obj: pv.Obj, off: pv.Off, declared: pv.Obj.Elem}
	}
}

func (c *compiler) memberLv(m *cast.Member) lvOp {
	pos, field := m.P, m.Field
	if m.Arrow {
		xOp := c.eval(m.X)
		return func(in *Interp, fr *frame) lvalue {
			p := xOp(in, fr)
			if p.Kind != VPtr {
				in.fail(pos, "-> on non-pointer")
			}
			in.checkBounds(p, pos)
			st, ok := ctypes.Resolve(p.Obj.Elem).(*ctypes.Struct)
			if !ok {
				in.fail(pos, "-> on pointer to non-struct")
			}
			i := st.FieldIndex(field)
			if i < 0 {
				in.fail(pos, "no field %q in struct %s", field, st.Tag)
			}
			base := lvalue{obj: p.Obj, off: p.Off, declared: st}
			return base.field(i, st.Fields[i].Type)
		}
	}
	switch m.X.(type) {
	case *cast.Ident, *cast.Index, *cast.Member:
		xLv := c.lv(m.X)
		return func(in *Interp, fr *frame) lvalue {
			base := xLv(in, fr)
			st, ok := ctypes.Resolve(in.declaredOf(base)).(*ctypes.Struct)
			if !ok {
				in.fail(pos, "member %q of non-lvalue", field)
			}
			i := st.FieldIndex(field)
			if i < 0 {
				in.fail(pos, "no field %q in struct %s", field, st.Tag)
			}
			return base.field(i, st.Fields[i].Type)
		}
	}
	return func(in *Interp, fr *frame) lvalue {
		in.fail(pos, "member %q of non-lvalue", field)
		return lvalue{}
	}
}

func (c *compiler) memberEval(m *cast.Member) evalOp {
	pos, field := m.P, m.Field
	if m.Arrow {
		arrowLv := c.memberLv(m)
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			lv := arrowLv(in, fr)
			in.addCost(costLoad)
			return lv.load()
		}
	}
	switch m.X.(type) {
	case *cast.Ident, *cast.Index, *cast.Member:
		xLv := c.lv(m.X)
		xEv := c.eval(m.X)
		mm := m
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			base := xLv(in, fr)
			st, ok := ctypes.Resolve(in.declaredOf(base)).(*ctypes.Struct)
			if !ok {
				// tryMemberLvalue declined: re-evaluate the base as an
				// rvalue, exactly like the walker's member-of-temporary
				// path (the lvalue resolution's side effects stand).
				bv := xEv(in, fr)
				return in.memberOfValue(bv, mm)
			}
			i := st.FieldIndex(field)
			if i < 0 {
				in.fail(pos, "no field %q in struct %s", field, st.Tag)
			}
			lv := base.field(i, st.Fields[i].Type)
			in.addCost(costLoad)
			return lv.load()
		}
	}
	xEv := c.eval(m.X)
	mm := m
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		bv := xEv(in, fr)
		return in.memberOfValue(bv, mm)
	}
}

// ---------------------------------------------------------------------------
// Calls

func (c *compiler) callEval(call *cast.Call) evalOp {
	pos := call.P
	switch fun := call.Fun.(type) {
	case *cast.Ident:
		if op, ok := c.builtin(fun.Name, call); ok {
			return op
		}
		// Compiled code never runs with a receiver (method invocations
		// route through callMethod on the tree walker, and plain calls
		// reaching a method body carry a nil receiver on both paths),
		// so the walker's sibling-method probe is statically dead here.
		name := fun.Name
		argOps := make([]evalOp, len(call.Args))
		for i, a := range call.Args {
			argOps[i] = c.eval(a)
		}
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			fn := in.funcOf(name)
			if fn == nil {
				in.fail(pos, "call to undefined function %q", name)
			}
			args := make([]Value, len(argOps))
			for i, aop := range argOps {
				var pt ctypes.Type
				if i < len(fn.Params) {
					pt = fn.Params[i].Type
				}
				v := aop(in, fr)
				if pt != nil {
					if _, isRef := pt.(ctypes.Ref); isRef {
						args[i] = v
						continue
					}
				}
				if v.Kind == VStruct {
					v = v.DeepCopy()
				}
				args[i] = v
			}
			return in.callFunction(fn, args, pos)
		}
	case *cast.Member:
		if st, ok := ctypes.Resolve(c.ctTypeOf(fun.X)).(ctypes.Stream); ok {
			return c.streamOp(fun, call, st)
		}
		// Struct method dispatch routes through callMethod (receiver
		// frames, constructor temporaries) — tree-walker territory.
		bail("struct method call")
	}
	ff := call.Fun
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		in.fail(pos, "unsupported call target %T", ff)
		return Value{}
	}
}

func (c *compiler) streamOp(m *cast.Member, call *cast.Call, st ctypes.Stream) evalOp {
	pos, field := call.P, m.Field
	baseOp := c.eval(m.X)
	nargs := len(call.Args)
	var arg0 evalOp
	if field == "write" && nargs == 1 {
		arg0 = c.eval(call.Args[0])
	}
	elem := st.Elem
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		base := baseOp(in, fr)
		if base.Kind != VStream || base.Stream == nil {
			in.fail(pos, "stream operation on non-stream value")
		}
		s := base.Stream
		in.addCost(costStream)
		switch field {
		case "read":
			if len(s.Q) == 0 {
				in.fail(pos, "read from empty stream %q", s.Name)
			}
			v := s.Q[0]
			s.Q = s.Q[1:]
			return v
		case "write":
			if nargs != 1 {
				in.fail(pos, "stream write takes one argument")
			}
			v := in.coerce(arg0(in, fr), elem)
			s.Q = append(s.Q, v)
			s.Pushes++
			return Value{Kind: VVoid}
		case "empty":
			return BoolValue(len(s.Q) == 0)
		case "size":
			return IntValue(int64(len(s.Q)))
		case "full":
			return BoolValue(false)
		}
		in.fail(pos, "unknown stream operation %q", field)
		return Value{}
	}
}

// ---------------------------------------------------------------------------
// Builtins

// builtin compiles library calls, mirroring evalBuiltin's evaluation
// orders, arity checks, and costs exactly. Arity shapes the walker
// would crash on (abs/assert with no argument, fmin/fmax with fewer
// than two) bail to the tree rather than reproduce a Go panic.
func (c *compiler) builtin(name string, call *cast.Call) (evalOp, bool) {
	pos := call.P
	nargs := len(call.Args)
	switch name {
	case "malloc":
		return c.mallocOp(pos, nil, call), true
	case "free":
		var arg0 evalOp
		if nargs == 1 {
			arg0 = c.eval(call.Args[0])
		}
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			if arg0 != nil {
				p := arg0(in, fr)
				if p.Kind == VPtr && p.Obj != nil {
					p.Obj.Freed = true
				}
			}
			in.addCost(costCall)
			return Value{Kind: VVoid}
		}, true
	case "printf":
		if nargs == 0 {
			return func(in *Interp, fr *frame) Value {
				in.step(pos)
				return Value{Kind: VVoid}
			}, true
		}
		format := ""
		if s, ok := call.Args[0].(*cast.StrLit); ok {
			format = s.Value
		}
		argOps := make([]evalOp, 0, nargs-1)
		for _, a := range call.Args[1:] {
			argOps = append(argOps, c.eval(a))
		}
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			args := make([]Value, 0, len(argOps))
			for _, aop := range argOps {
				args = append(args, aop(in, fr))
			}
			in.out.WriteString(formatC(format, args))
			in.addCost(costCall)
			return Value{Kind: VVoid}
		}, true
	case "abs":
		if nargs < 1 {
			bail("abs with no argument")
		}
		arg0 := c.eval(call.Args[0])
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			v := arg0(in, fr).AsInt()
			if v < 0 {
				v = -v
			}
			in.addCost(costIAdd)
			return IntValue(v)
		}, true
	case "fabs", "fabsf":
		return c.mathOp(call, math.Abs), true
	case "sqrt", "sqrtf":
		return c.mathOp(call, math.Sqrt), true
	case "sin":
		return c.mathOp(call, math.Sin), true
	case "cos":
		return c.mathOp(call, math.Cos), true
	case "exp":
		return c.mathOp(call, math.Exp), true
	case "log":
		return c.mathOp(call, math.Log), true
	case "floor":
		return c.mathOp(call, math.Floor), true
	case "ceil":
		return c.mathOp(call, math.Ceil), true
	case "pow", "powf":
		if nargs != 2 {
			return func(in *Interp, fr *frame) Value {
				in.step(pos)
				in.fail(pos, "pow takes two arguments")
				return Value{}
			}, true
		}
		a0, a1 := c.eval(call.Args[0]), c.eval(call.Args[1])
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			a := a0(in, fr).AsFloat()
			b := a1(in, fr).AsFloat()
			in.addCost(costFDiv)
			return FloatValue(math.Pow(a, b))
		}, true
	case "fmin":
		return c.minmaxOp(call, math.Min), true
	case "fmax":
		return c.minmaxOp(call, math.Max), true
	case "assert":
		if nargs < 1 {
			bail("assert with no argument")
		}
		arg0 := c.eval(call.Args[0])
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			v := arg0(in, fr)
			if v.IsZero() {
				in.fail(pos, "assertion failed")
			}
			return Value{Kind: VVoid}
		}, true
	}
	return nil, false
}

func (c *compiler) mathOp(call *cast.Call, f func(float64) float64) evalOp {
	pos := call.P
	if len(call.Args) != 1 {
		return func(in *Interp, fr *frame) Value {
			in.step(pos)
			in.fail(pos, "math builtin takes one argument")
			return Value{}
		}
	}
	arg0 := c.eval(call.Args[0])
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		v := arg0(in, fr).AsFloat()
		in.addCost(costFDiv)
		return FloatValue(f(v))
	}
}

func (c *compiler) minmaxOp(call *cast.Call, f func(a, b float64) float64) evalOp {
	if len(call.Args) < 2 {
		bail("fmin/fmax with fewer than two arguments")
	}
	pos := call.P
	a0, a1 := c.eval(call.Args[0]), c.eval(call.Args[1])
	return func(in *Interp, fr *frame) Value {
		in.step(pos)
		a := a0(in, fr).AsFloat()
		b := a1(in, fr).AsFloat()
		in.addCost(costFAdd)
		return FloatValue(f(a, b))
	}
}

// mallocOp compiles dynamic allocation: stepPos is the node the walker
// steps ((T*)malloc steps only the cast node; bare malloc steps the
// call), while failures always report at the call position.
func (c *compiler) mallocOp(stepPos ctoken.Pos, castTo ctypes.Type, call *cast.Call) evalOp {
	callP := call.P
	nargs := len(call.Args)
	var arg0 evalOp
	if nargs == 1 {
		arg0 = c.eval(call.Args[0])
	}
	elem := ctypes.Type(ctypes.Char)
	if castTo != nil {
		if p, ok := ctypes.Resolve(castTo).(ctypes.Pointer); ok {
			elem = ctypes.Resolve(p.Elem)
		}
	}
	esz := int64(SizeofBytes(elem))
	return func(in *Interp, fr *frame) Value {
		in.step(stepPos)
		if in.opts.Mode == FPGA {
			in.fail(callP, "dynamic memory allocation is not supported on the fabric")
		}
		if nargs != 1 {
			in.fail(callP, "malloc takes one argument")
		}
		bytes := arg0(in, fr).AsInt()
		count := bytes / esz
		if count < 1 {
			count = 1
		}
		if count > 1<<22 {
			in.fail(callP, "allocation too large (%d elements)", count)
		}
		in.mallocSeq++
		obj := &Object{
			Name:  fmt.Sprintf("heap#%d", in.mallocSeq),
			Elem:  elem,
			Elems: make([]Value, count),
		}
		zero := ZeroValue(elem)
		for i := range obj.Elems {
			obj.Elems[i] = zero.DeepCopy()
		}
		in.addCost(costCall)
		return Value{Kind: VPtr, Obj: obj}
	}
}
