package interp

import (
	"sync"

	"github.com/hetero/heterogen/internal/cast"
)

// This file holds the compiled-code runtime: the direct-threaded
// instruction representation produced by compile.go, the per-function
// container, and the shared Codebase cache that lets every candidate
// unit sharing an unedited *cast.FuncDecl reuse its compiled form.
//
// The contract with the tree walker is strict: for any program in the
// subset, compiled execution produces byte-identical results — values,
// cost, raw cost, step count, output, coverage bits, profiles, and
// error messages (including positions and budget classification). The
// differential belt in difffuzz_test.go enforces the contract over
// thousands of generated programs. Any construct the compiler cannot
// reproduce exactly falls back to the tree for the whole function.

// Op types: compiled code is a flat slice of closures ("direct-threaded
// code") — one execOp per statement, composed from evalOp/lvOp
// sub-instructions. Closures carry only compile-time-constant state, so
// one compiled function is safely shared across goroutines, interpreter
// instances, and execution modes (every mode-dependent decision reads
// in.opts at run time, mirroring the tree walker).
type (
	execOp func(in *Interp, fr *frame) control
	evalOp func(in *Interp, fr *frame) Value
	lvOp   func(in *Interp, fr *frame) lvalue
)

// compiledFunc is one function's compiled body.
type compiledFunc struct {
	fn *cast.FuncDecl
	// stmts are the top-level body statements; isCall marks which are
	// call statements (the dataflow cost-overlap set, precomputed).
	stmts  []execOp
	isCall []bool
	// nslots is the frame's flat local-variable array size; paramSlots
	// maps parameter index -> slot.
	nslots     int
	paramSlots []int
	// parts is the function-head array_partition map. It is shared by
	// every frame running this code, so the interpreter marks it
	// partitionsShared and copies on the first runtime pragma write.
	parts    map[string]int
	dataflow bool
	// fallback marks a function the compiler could not reproduce
	// exactly; callers run the tree walker instead.
	fallback bool
}

// run executes the body like callFunction's execBlock(fn.Body) — the
// body block itself is not stepped, and compiled frames need no scope
// push (every name was resolved to a slot at compile time).
func (cf *compiledFunc) run(in *Interp, fr *frame) {
	for _, op := range cf.stmts {
		if c := op(in, fr); c != ctlNone || fr.returned {
			return
		}
	}
}

// runDataflow mirrors execDataflowBody: top-level call statements
// overlap (max instead of sum, on cost only — rawCost keeps the
// sequential sum, exactly like the tree walker's addCost/rollback).
func (cf *compiledFunc) runDataflow(in *Interp, fr *frame) {
	var maxCall int64
	for i, op := range cf.stmts {
		before := in.cost
		c := op(in, fr)
		if cf.isCall[i] {
			delta := in.cost - before
			in.cost = before
			if delta > maxCall {
				maxCall = delta
			}
		}
		if c != ctlNone || fr.returned {
			break
		}
	}
	in.cost += maxCall
}

// loopScale is the compile-time precomputation of scaleLoopCost's
// inputs: the parsed pragma directives and the index-identifier names
// the body's partition lookup walks. The partition factors themselves
// stay a run-time lookup (pragmas executed inside the body can change
// them mid-run, and the tree walker sees that).
type loopScale struct {
	// hasPragmas preserves the tree walker's raw len(pragmas) > 0 gate,
	// which counts unparsed and non-HLS pragmas too.
	hasPragmas bool
	dirs       []PragmaDirective
	idxNames   []string
}

func newLoopScale(pragmas []*cast.Pragma, body cast.Stmt) *loopScale {
	ls := &loopScale{hasPragmas: len(pragmas) > 0}
	for _, p := range pragmas {
		ls.dirs = append(ls.dirs, ParsePragma(p.Text))
	}
	seen := map[string]bool{}
	cast.Inspect(body, func(n cast.Node) bool {
		if ix, ok := n.(*cast.Index); ok {
			if id, ok := ix.X.(*cast.Ident); ok && !seen[id.Name] {
				seen[id.Name] = true
				ls.idxNames = append(ls.idxNames, id.Name)
			}
		}
		return true
	})
	return ls
}

// maxPartition is maxPartitionOf over the precomputed name list.
func (ls *loopScale) maxPartition(in *Interp) int {
	max := 1
	for _, n := range ls.idxNames {
		if f, ok := in.partitions[n]; ok && f > max {
			max = f
		}
	}
	return max
}

// vmScaleLoop is scaleLoopCost over a precomputed loopScale.
func (in *Interp) vmScaleLoop(ls *loopScale, startCost, iterations int64, minII int) {
	if in.opts.Mode != FPGA || !ls.hasPragmas || iterations <= 0 {
		return
	}
	delta := in.cost - startCost
	if delta <= 0 {
		return
	}
	pipelined := false
	ii := minII
	unroll := 1
	for _, d := range ls.dirs {
		switch d.Kind {
		case PragmaPipeline:
			pipelined = true
			if d.Factor > ii {
				ii = d.Factor
			}
		case PragmaUnroll:
			f := d.Factor
			if f <= 0 {
				f = 8 // full unroll default benefit
			}
			ports := 2 * ls.maxPartition(in)
			if f > ports {
				f = ports
			}
			if f > unroll {
				unroll = f
			}
		}
	}
	scaled := delta
	if unroll > 1 {
		scaled = delta / int64(unroll)
	}
	if pipelined {
		piped := iterations*int64(ii)/int64(unroll) + pipelineDepth
		if piped < scaled {
			scaled = piped
		}
	}
	if floor := delta / maxLoopSpeedup; scaled < floor {
		scaled = floor
	}
	if scaled >= delta {
		return
	}
	in.cost = startCost + scaled + costLoopOverhead
}

// codebaseCap bounds the content-keyed compiled-function cache; it
// stays near the number of distinct candidate bodies a search visits.
const codebaseCap = 4096

// codebasePtrCap bounds the pointer-identity map separately, and much
// tighter: every evaluated candidate mints a fresh edited *cast.FuncDecl,
// and compiled closures would pin each candidate's AST for the cache's
// lifetime. A small cap keeps the live set to the recent working set —
// evicted entries cost one content-cache lookup to restore, not a
// recompilation.
const codebasePtrCap = 128

// Codebase caches compiled functions, keyed twice: by declaration
// identity (the fast hit for structure-sharing candidates, which keep
// unedited *cast.FuncDecl pointers and for repeated runs of one
// candidate), and — when the caller supplies a content key via
// Options.CodeKey — by (unit content key, function name), so a
// candidate regenerated with identical content in a later search
// iteration, a fresh pointer every time, reuses the compiled body
// instead of recompiling it.
//
// The CodeKey contract: two units presenting the same key must be
// interchangeable per declaration — equal canonical text, equal token
// positions, and equal branch-site numbering — because the reused code
// executes the AST nodes of whichever unit compiled first, and
// positions (error messages) and branch IDs (coverage bits) are
// observable. The repair search's content fingerprints satisfy this:
// every candidate descends from one parsed unit through edits that
// preserve parse positions and branch numbering (or renumber the whole
// unit deterministically), so equal printed text implies equal
// positions and numbering.
//
// Codebase is safe for concurrent use; a cache miss compiles outside
// the lock (duplicate concurrent compiles of the same function produce
// equivalent code, and the last write wins harmlessly).
type Codebase struct {
	mu      sync.Mutex
	m       map[*cast.FuncDecl]*compiledFunc
	content map[string]*compiledFunc
	reuses  int
}

// NewCodebase creates an empty compiled-code cache, shareable across
// interpreters, goroutines, and execution modes.
func NewCodebase() *Codebase {
	return &Codebase{
		m:       map[*cast.FuncDecl]*compiledFunc{},
		content: map[string]*compiledFunc{},
	}
}

// contentKey builds the content-cache key for fn inside a unit whose
// caller-supplied key is codeKey. The function name disambiguates
// declarations within the unit; the body marker separates a prototype
// from its definition (same name, different compiled form).
func contentKey(codeKey string, fn *cast.FuncDecl) string {
	body := "p"
	if fn.Body != nil {
		body = "d"
	}
	return codeKey + "\x00" + fn.Name + "\x00" + body
}

func (cb *Codebase) get(u *cast.Unit, fn *cast.FuncDecl, codeKey string) *compiledFunc {
	cb.mu.Lock()
	if cf, ok := cb.m[fn]; ok {
		cb.mu.Unlock()
		return cf
	}
	cb.mu.Unlock()

	var key string
	if codeKey != "" {
		key = contentKey(codeKey, fn)
		cb.mu.Lock()
		if cf, ok := cb.content[key]; ok {
			if len(cb.m) >= codebasePtrCap {
				cb.m = map[*cast.FuncDecl]*compiledFunc{}
			}
			cb.m[fn] = cf
			cb.reuses++
			cb.mu.Unlock()
			return cf
		}
		cb.mu.Unlock()
	}

	cf := compileFunc(u, fn)
	cb.mu.Lock()
	if len(cb.m) >= codebasePtrCap {
		cb.m = map[*cast.FuncDecl]*compiledFunc{}
	}
	cb.m[fn] = cf
	if key != "" {
		if len(cb.content) >= codebaseCap {
			cb.content = map[string]*compiledFunc{}
		}
		cb.content[key] = cf
	}
	cb.mu.Unlock()
	return cf
}

// Size reports the number of cached compiled functions (for tests and
// observability).
func (cb *Codebase) Size() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return len(cb.m)
}

// Reuses reports how many pointer-cache misses were served by the
// content cache instead of a fresh compilation (for tests and
// observability).
func (cb *Codebase) Reuses() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.reuses
}

// Fallbacks reports how many cached functions could not be compiled and
// run on the tree walker instead.
func (cb *Codebase) Fallbacks() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	n := 0
	for _, cf := range cb.m {
		if cf.fallback {
			n++
		}
	}
	return n
}
