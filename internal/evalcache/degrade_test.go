package evalcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/obs"
)

// TestUnopenableDirDegradesToMemory: a persistent tier that cannot be
// opened must never fail the run — the cache comes up in-memory with
// one warning, a DiskWriteFailures count, and a metric.
func TestUnopenableDirDegradesToMemory(t *testing.T) {
	// A regular file where the directory should be.
	dir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	reg := obs.NewRegistry()
	c, err := New(Options{Dir: dir, Metrics: reg,
		Warn: func(m string) { warnings = append(warnings, m) }})
	if err != nil {
		t.Fatalf("degraded open must not error: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "persistent tier disabled") {
		t.Fatalf("warnings = %v", warnings)
	}
	if n := c.Stats().DiskWriteFailures; n != 1 {
		t.Errorf("DiskWriteFailures = %d, want 1", n)
	}
	if n := reg.Counter("cache.disk_degraded"); n != 1 {
		t.Errorf("cache.disk_degraded = %d, want 1", n)
	}

	// The in-memory tier keeps working.
	c.Put(StageCheck, "k1", 42)
	var got int
	if !c.Get(StageCheck, "k1", &got) || got != 42 {
		t.Errorf("in-memory tier broken after degrade: %d", got)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close after degrade: %v", err)
	}
}

// TestFailedAppendDegradesOnce: a disk-write failure mid-run drops the
// persistent tier, warns once, and leaves Get/Put functional.
func TestFailedAppendDegradesOnce(t *testing.T) {
	dir := t.TempDir()
	var warnings []string
	c, err := New(Options{Dir: dir, Warn: func(m string) { warnings = append(warnings, m) }})
	if err != nil {
		t.Fatal(err)
	}
	if c.shards[0].store == nil {
		t.Fatal("no disk store opened")
	}
	// Close the store's file behind its back so the next flushed append
	// fails; a value larger than the 4 KiB bufio buffer forces the flush
	// inside Put.
	if err := c.shards[0].store.f.Close(); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 64<<10)
	c.Put(StageCheck, "a", big)
	c.Put(StageCheck, "b", 2)
	if len(warnings) != 1 {
		t.Fatalf("want exactly one warning, got %v", warnings)
	}
	if c.shards[0].store != nil {
		t.Error("store not dropped after failed append")
	}
	if n := c.Stats().DiskWriteFailures; n != 1 {
		t.Errorf("DiskWriteFailures = %d, want 1 (second Put has no store)", n)
	}
	var gotBig string
	if !c.Get(StageCheck, "a", &gotBig) || gotBig != big {
		t.Error("memory tier lost the entry that failed to persist")
	}
	var got int
	if !c.Get(StageCheck, "b", &got) || got != 2 {
		t.Error("memory tier lost entries after degrade")
	}
}

// TestDifftestSaltIncludesInterpSteps pins the cache-correctness half
// of the step-budget satellite: verdicts produced under different
// budgets must never collide.
func TestDifftestSaltIncludesInterpSteps(t *testing.T) {
	a := DifftestSalt("top", "dev", 250, 0, "k", "orig", "corpus")
	b := DifftestSalt("top", "dev", 250, 500, "k", "orig", "corpus")
	if a == b {
		t.Error("salt ignores the interpreter step budget")
	}
	if a != DifftestSalt("top", "dev", 250, 0, "k", "orig", "corpus") {
		t.Error("salt not deterministic")
	}
}
