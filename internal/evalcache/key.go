package evalcache

import "fmt"

// Key derivation — the single place that decides what each cached
// verdict depends on (and therefore what invalidates it). Every
// component is either canonical program text (cast.Print output — or,
// on the repair search's fast evaluation path, a cast.FingerprintUnit
// content hash of that text; both are passed in by callers since this
// package stays AST-agnostic) or a rendered option value; anything
// that cannot affect the verdict — Workers, observers, the cache
// itself, EvalDelay — is deliberately absent, so cold and warm runs
// address the same entries regardless of parallelism or tracing.
// Printed-text keys and fingerprint keys never collide: a fingerprint
// is a fixed-width hex string that is not valid C, and the salts that
// feed per-candidate keys (CheckSalt, DifftestSalt) still consume the
// original's printed text, which is produced once per search.

// CheckSalt captures the toolchain configuration a synthesizability
// verdict depends on. Combine with the candidate's printed text via
// CheckKey.
func CheckSalt(top, device string, clockMHz float64) string {
	return Fingerprint("check-cfg", top, device, fmt.Sprintf("%g", clockMHz))
}

// CheckKey addresses one StageCheck verdict.
func CheckKey(salt, printedUnit string) string {
	return Fingerprint("check", salt, printedUnit)
}

// ResourceKey addresses one StageSim estimate. Resource estimation
// walks only the design itself, so the printed text is the whole key.
func ResourceKey(printedUnit string) string {
	return Fingerprint("sim", printedUnit)
}

// TargetCheckSalt is CheckSalt for a resolved (backend, device) target:
// the backend name joins the fingerprint so dialect-translated verdicts
// for different toolchains never collide, even on the same part.
func TargetCheckSalt(backend, top, device string, clockMHz float64) string {
	return Fingerprint("check-cfg-target", backend, top, device, fmt.Sprintf("%g", clockMHz))
}

// DifftestSalt captures everything a differential-test verdict depends
// on besides the candidate: the toolchain configuration (including the
// interpreter step budget, which decides pass vs inconclusive), the
// kernel under test, the oracle program, and the test corpus. Combine
// with the candidate's printed text via DifftestKey.
func DifftestSalt(top, device string, clockMHz float64, interpSteps int64, kernel, printedOriginal, corpusHash string) string {
	return Fingerprint("difftest-cfg", top, device,
		fmt.Sprintf("%g|%d", clockMHz, interpSteps),
		kernel, printedOriginal, corpusHash)
}

// DifftestKey addresses one StageDifftest verdict.
func DifftestKey(salt, printedCandidate string) string {
	return Fingerprint("difftest", salt, printedCandidate)
}

// TargetDifftestSalt is DifftestSalt for a resolved target. The
// differential test itself is behaviour-only (target-independent), but
// its report embeds simulated latencies under the target's clock, so
// verdicts are keyed per target. ResourceKey stays target-free on
// purpose: resource estimation is a pure function of the design text.
func TargetDifftestSalt(backend, top, device string, clockMHz float64, interpSteps int64, kernel, printedOriginal, corpusHash string) string {
	return Fingerprint("difftest-cfg-target", backend, top, device,
		fmt.Sprintf("%g|%d", clockMHz, interpSteps),
		kernel, printedOriginal, corpusHash)
}

// FuzzKey addresses one StageFuzz campaign: the program, the kernel,
// and every option that shapes the campaign's outcome. Workers is
// excluded by the determinism contract (campaigns are bit-identical
// for any value), and observers never change what a campaign computes.
func FuzzKey(printedUnit, kernel string, seed int64, maxExecs, plateau int, hostMain string, typedMutation bool, maxStepsPerExec int64) string {
	return Fingerprint("fuzz", printedUnit, kernel,
		fmt.Sprintf("%d|%d|%d|%t|%d", seed, maxExecs, plateau, typedMutation, maxStepsPerExec),
		hostMain)
}
