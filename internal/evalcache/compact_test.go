package evalcache

import (
	"fmt"
	"os"
	"os/exec"
	"testing"

	"github.com/hetero/heterogen/internal/crashpoint"
)

// fillGarbage writes n keys, each overwritten rounds times, and closes
// the cache — leaving rounds-1 stale copies of every entry on disk.
func fillGarbage(t *testing.T, dir string, shards, n, rounds int) {
	t.Helper()
	c, err := New(Options{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			c.Put(StageCheck, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d-round-%d", i, r))
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// assertLive verifies every key holds its final-round value.
func assertLive(t *testing.T, c *Cache, n, rounds int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var got string
		if !c.Get(StageCheck, fmt.Sprintf("key-%03d", i), &got) {
			t.Fatalf("key-%03d lost", i)
		}
		if want := fmt.Sprintf("val-%03d-round-%d", i, rounds-1); got != want {
			t.Fatalf("key-%03d = %q, want %q (stale copy won)", i, got, want)
		}
	}
}

// TestCompactionRewrites: a garbage-heavy store shrinks on open, keeps
// every live entry, and counts the rewrite into Stats.
func TestCompactionRewrites(t *testing.T) {
	dir := t.TempDir()
	fillGarbage(t, dir, 1, 40, 8)
	before := storeBytes(dir)

	c, err := New(Options{Dir: dir, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := storeBytes(dir)
	if after >= before {
		t.Fatalf("store did not shrink: %d -> %d bytes", before, after)
	}
	st := c.Stats()
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", st.Compactions)
	}
	if st.CompactedBytes != before-after {
		t.Errorf("CompactedBytes = %d, want %d", st.CompactedBytes, before-after)
	}
	assertLive(t, c, 40, 8)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted store must itself reload cleanly — and not compact
	// again (no garbage left).
	c2, err := New(Options{Dir: dir, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := c2.Stats().Compactions; n != 0 {
		t.Errorf("clean store recompacted (%d)", n)
	}
	assertLive(t, c2, 40, 8)
	c2.Close()
}

// TestCompactionThresholds: a store below the size floor or the
// garbage fraction is left byte-for-byte alone.
func TestCompactionThresholds(t *testing.T) {
	t.Run("below-min-bytes", func(t *testing.T) {
		dir := t.TempDir()
		fillGarbage(t, dir, 1, 10, 4)
		before := storeBytes(dir)
		c, err := New(Options{Dir: dir, CompactMinBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if got := storeBytes(dir); got != before {
			t.Errorf("store rewritten below min bytes: %d -> %d", before, got)
		}
	})
	t.Run("below-garbage-fraction", func(t *testing.T) {
		dir := t.TempDir()
		fillGarbage(t, dir, 1, 10, 1) // no overwrites: ~0% garbage
		before := storeBytes(dir)
		c, err := New(Options{Dir: dir, CompactMinBytes: 1, CompactGarbage: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if got := storeBytes(dir); got != before {
			t.Errorf("garbage-free store rewritten: %d -> %d", before, got)
		}
	})
}

// TestCompactionShardCountChange: compaction re-routes entries under
// the new shard count and removes files outside the new layout.
func TestCompactionShardCountChange(t *testing.T) {
	dir := t.TempDir()
	fillGarbage(t, dir, 4, 40, 4)
	if files := entriesFiles(dir); len(files) != 4 {
		t.Fatalf("setup wrote %d files, want 4", len(files))
	}

	c, err := New(Options{Dir: dir, Shards: 1, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if files := entriesFiles(dir); len(files) != 1 || files[0] != entriesFile {
		t.Fatalf("files after shrink = %v, want [%s]", files, entriesFile)
	}
	assertLive(t, c, 40, 4)
	c.Close()
}

// TestCompactionPreservesSidecar: the stats.json sidecar survives a
// compaction and keeps accumulating across it.
func TestCompactionPreservesSidecar(t *testing.T) {
	dir := t.TempDir()
	fillGarbage(t, dir, 1, 20, 6)
	prior, err := SummarizeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if prior.Stats.Stages[StageCheck].Stores == 0 {
		t.Fatal("setup produced no sidecar stores")
	}

	c, err := New(Options{Dir: dir, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var v string
	c.Get(StageCheck, "key-000", &v)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := SummarizeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Stats.Stages[StageCheck].Stores, prior.Stats.Stages[StageCheck].Stores; got != want {
		t.Errorf("sidecar stores = %d, want %d (history lost)", got, want)
	}
	if sum.Stats.Compactions != 1 {
		t.Errorf("sidecar compactions = %d, want 1", sum.Stats.Compactions)
	}
}

// crashHelper re-executes this test binary as a child process with one
// crash site armed, runs fn in the child, and reports whether the
// child was SIGKILLed (true) or exited cleanly (false — the site was
// never reached, i.e. the matrix is exhausted).
func crashHelper(t *testing.T, testName, dir, arm string) bool {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^"+testName+"$", "-test.v")
	cmd.Env = append(os.Environ(),
		"EVALCACHE_CRASH_CHILD=1",
		"EVALCACHE_CRASH_DIR="+dir,
		crashpoint.EnvVar+"="+arm)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return false
	}
	if cmd.ProcessState != nil && cmd.ProcessState.ExitCode() == -1 {
		return true // killed by the armed crash point
	}
	t.Fatalf("child failed for a reason other than the crash point:\n%s", out)
	return false
}

// childCompact is what the kill-matrix child runs: open the garbage
// store with compaction on (the armed crashpoint kills it mid-rewrite).
func childCompact() {
	dir := os.Getenv("EVALCACHE_CRASH_DIR")
	c, err := New(Options{Dir: dir, Shards: 2, CompactMinBytes: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c.Close()
}

// TestCompactionKillMatrix SIGKILLs a real child process at every step
// boundary of a compaction (each tmp build, each rename, each stale
// delete) and asserts the survivor store still serves every live
// entry. The matrix walks N upward until a child runs clean — meaning
// every kill point has been exercised.
func TestCompactionKillMatrix(t *testing.T) {
	if os.Getenv("EVALCACHE_CRASH_CHILD") == "1" {
		childCompact()
		return
	}
	const keys, rounds = 30, 5
	for n := 1; n <= 32; n++ {
		dir := t.TempDir()
		// 4 shard files going in, 2 coming out: the matrix covers tmp
		// builds, renames, AND stale-file deletes.
		fillGarbage(t, dir, 4, keys, rounds)
		killed := crashHelper(t, "TestCompactionKillMatrix", dir,
			fmt.Sprintf("evalcache.compact:%d", n))

		c, err := New(Options{Dir: dir})
		if err != nil {
			t.Fatalf("kill point %d: reopen: %v", n, err)
		}
		assertLive(t, c, keys, rounds)
		c.Close()
		if !killed {
			t.Logf("kill matrix exhausted after %d points", n-1)
			return
		}
	}
	t.Fatal("compaction has more than 32 kill points; widen the matrix")
}

// childAppend is the torn-append child: reopen the store and put one
// more entry — the armed crashpoint tears that append mid-line.
func childAppend() {
	dir := os.Getenv("EVALCACHE_CRASH_DIR")
	c, err := New(Options{Dir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c.Put(StageCheck, "victim", "torn-value")
	c.Close()
}

// TestAppendKillLeavesLoadableStore: a SIGKILL mid-append leaves a
// torn final line; reopening skips it (counted) and every prior entry
// survives.
func TestAppendKillLeavesLoadableStore(t *testing.T) {
	if os.Getenv("EVALCACHE_CRASH_CHILD") == "1" {
		childAppend()
		return
	}
	dir := t.TempDir()
	fillGarbage(t, dir, 1, 10, 1)
	if !crashHelper(t, "TestAppendKillLeavesLoadableStore", dir, "evalcache.append:1") {
		t.Fatal("child was not killed — the append crash point never fired")
	}

	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := c.Stats()
	if st.DiskSkipped == 0 {
		t.Error("torn line was not detected on reload")
	}
	assertLive(t, c, 10, 1)
	var v string
	if c.Get(StageCheck, "victim", &v) {
		t.Errorf("torn entry resurrected as %q", v)
	}
}
