// Package evalcache is the content-addressed evaluation cache of the
// pipeline: it memoizes the expensive simulated-toolchain verdicts —
// synthesizability checks (StageCheck), resource estimates (StageSim),
// differential tests (StageDifftest), and whole fuzzing campaigns
// (StageFuzz) — on SHA-256 fingerprints of canonical program text plus
// every configuration input that could change the verdict (device,
// clock, step budgets; see the *Salt helpers).
//
// Two tiers back the cache: a bounded in-memory LRU and an optional
// append-only JSONL disk store (Options.Dir) that persists entries
// across processes, with a stats.json sidecar accumulating lifetime
// hit/miss/store counts. A disk failure never fails a run — the cache
// degrades to memory-only with one warning and a cache.disk_degraded
// metric.
//
// Concurrency: the cache is safe for concurrent use and, with
// Options.Shards > 1, internally sharded — each shard owns its own
// lock, LRU, and append file (entries.jsonl, entries-1.jsonl, …), so
// concurrent pipelines (the hgserve job pool) contend per shard rather
// than on one global mutex. Sharding is invisible through the API:
// Get/Put verdicts are byte-identical for any shard count, aggregated
// Stats match the unsharded cache, and a directory written under one
// shard count serves a cache opened with any other (entries are routed
// by content address at load time).
//
// Correctness contract (the cache-parity tests): hits skip real
// recomputation but charge identical virtual costs in identical order,
// so pipeline Results and JSONL traces are byte-identical whether the
// cache is disabled, cold, or warm — only wall-clock changes. The one
// out-of-band field is Result.CacheStats, whose hit counts legitimately
// vary with cache temperature and Workers (speculative evaluations
// consult the cache too).
package evalcache
