package evalcache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// opSequence drives one deterministic mixed Put/Get workload against a
// cache and returns every Get outcome (found flag + decoded value) in
// order, so two caches can be compared op for op.
func opSequence(c *Cache) []string {
	var got []string
	for i := 0; i < 400; i++ {
		stage := Stages()[i%len(Stages())]
		k := Fingerprint("shard-parity", string(stage), fmt.Sprint(i%97))
		switch i % 3 {
		case 0:
			c.Put(stage, k, map[string]int{"v": i % 97})
		default:
			var v map[string]int
			ok := c.Get(stage, k, &v)
			got = append(got, fmt.Sprintf("%v:%v", ok, v))
		}
	}
	return got
}

// TestShardParity is the acceptance check for cache sharding: a sharded
// cache must be observationally identical to the unsharded one — every
// Get returns byte-identical verdicts, and the aggregated per-stage
// hit/miss/store statistics match exactly. (Evictions are excluded: the
// LRU bound is split per shard, so victim choice legitimately differs;
// the workload here stays far below capacity so both report zero.)
func TestShardParity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		flat, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := New(Options{Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", sharded.Shards(), n)
		}
		want := opSequence(flat)
		got := opSequence(sharded)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: Get outcomes diverge from unsharded cache", n)
		}
		fs, ss := flat.Stats(), sharded.Stats()
		if !reflect.DeepEqual(fs.Stages, ss.Stages) {
			t.Errorf("shards=%d: aggregated stage stats diverge:\n  flat:    %+v\n  sharded: %+v", n, fs.Stages, ss.Stages)
		}
		if flat.Len() != sharded.Len() {
			t.Errorf("shards=%d: Len %d vs %d", n, sharded.Len(), flat.Len())
		}
	}
}

// TestShardDiskInterop: a directory written with one shard count must
// serve a cache opened with any other — entries are routed by content
// address at load time, never by which file they were read from.
func TestShardDiskInterop(t *testing.T) {
	dir := t.TempDir()
	writer, err := New(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = Fingerprint("interop", fmt.Sprint(i))
		writer.Put(StageCheck, keys[i], i)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files < 2 {
		t.Fatalf("sharded store wrote %d entry file(s), want several", sum.Files)
	}
	if sum.Entries[StageCheck] != len(keys) {
		t.Fatalf("SummarizeDir found %d entries, want %d", sum.Entries[StageCheck], len(keys))
	}
	for _, n := range []int{1, 3, 8} {
		reader, err := New(Options{Dir: dir, Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		if got := reader.Stats().DiskLoaded; got != int64(len(keys)) {
			t.Errorf("shards=%d: DiskLoaded = %d, want %d", n, got, len(keys))
		}
		for i, k := range keys {
			var v int
			if !reader.Get(StageCheck, k, &v) || v != i {
				t.Fatalf("shards=%d: entry %d lost across shard-count change (ok=%v v=%d)", n, i, reader.Get(StageCheck, k, &v), v)
			}
		}
		if err := reader.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCapacitySplit: the whole-cache LRU bound is divided across
// shards, so a sharded cache's resident population stays within one
// entry per shard of the configured capacity.
func TestShardCapacitySplit(t *testing.T) {
	const capacity, shards = 64, 8
	c, err := New(Options{Capacity: capacity, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*capacity; i++ {
		c.Put(StageCheck, Fingerprint("cap", fmt.Sprint(i)), i)
	}
	if got := c.Len(); got > capacity+shards {
		t.Errorf("resident entries = %d, want <= %d", got, capacity+shards)
	}
	var evictions int64
	for _, st := range c.Stats().Stages {
		evictions += st.Evictions
	}
	if evictions == 0 {
		t.Error("no evictions counted despite 10x-capacity workload")
	}
}

// TestShardConcurrency hammers every shard from many goroutines under
// -race: concurrent Put/Get/Stats/Len across all stages must be safe
// and must never lose a stored entry that was not evicted.
func TestShardConcurrency(t *testing.T) {
	c, err := New(Options{Shards: 8, Capacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 16, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				stage := Stages()[(g+i)%len(Stages())]
				k := Fingerprint("conc", string(stage), fmt.Sprint(g), fmt.Sprint(i))
				c.Put(stage, k, g*perG+i)
				var v int
				if !c.Get(stage, k, &v) || v != g*perG+i {
					t.Errorf("g%d: lost own write %d", g, i)
					return
				}
				// Cross-goroutine reads: either a miss (not yet written) or
				// the exact stored value.
				ok := Fingerprint("conc", string(stage), fmt.Sprint((g+1)%goroutines), fmt.Sprint(i))
				var w int
				if c.Get(stage, ok, &w) && w%perG != i {
					t.Errorf("g%d: read wrong neighbour value %d at i=%d", g, w, i)
					return
				}
				_ = c.Stats()
				_ = c.Len()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	var stores int64
	for _, s := range st.Stages {
		stores += s.Stores
	}
	if want := int64(goroutines * perG); stores != want {
		t.Errorf("stores = %d, want %d", stores, want)
	}
}

// TestShardConcurrentDisk: concurrent writers over a persistent sharded
// cache must leave every entry recoverable after Close (each shard owns
// its append file; no cross-shard interleaving can corrupt a line).
func TestShardConcurrentDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Put(StageSim, Fingerprint("disk", fmt.Sprint(g), fmt.Sprint(i)), [2]int{g, i})
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := New(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			var v [2]int
			if !re.Get(StageSim, Fingerprint("disk", fmt.Sprint(g), fmt.Sprint(i)), &v) || v != [2]int{g, i} {
				t.Fatalf("entry (%d,%d) lost or corrupted across restart", g, i)
			}
		}
	}
	sum, err := SummarizeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 0 {
		t.Errorf("found %d malformed lines after concurrent sharded writes", sum.Skipped)
	}
}
