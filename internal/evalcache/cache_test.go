package evalcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/obs"
)

type verdict struct {
	OK    bool
	Score float64
	Notes []string
}

func TestFingerprintBoundaries(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("component boundaries must be part of the fingerprint")
	}
	if Fingerprint("x") == Fingerprint("x", "") {
		t.Error("empty trailing components must change the fingerprint")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Error("fingerprints must be deterministic")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := verdict{OK: true, Score: 0.1 + 0.2, Notes: []string{"a", "b"}}
	key := Fingerprint("k")
	var missed verdict
	if c.Get(StageCheck, key, &missed) {
		t.Fatal("hit on an empty cache")
	}
	c.Put(StageCheck, key, want)
	var got verdict
	if !c.Get(StageCheck, key, &got) {
		t.Fatal("miss after Put")
	}
	if got.OK != want.OK || got.Score != want.Score || len(got.Notes) != 2 {
		t.Fatalf("round trip mangled the value: %+v", got)
	}
	// Hits must never alias: mutating one restored copy cannot leak
	// into the next (repair scores hold diagnostic slices).
	got.Notes[0] = "mutated"
	var again verdict
	if !c.Get(StageCheck, key, &again) {
		t.Fatal("second Get missed")
	}
	if again.Notes[0] != "a" {
		t.Error("restored values alias each other")
	}
	// Same hash under a different stage is a distinct entry.
	var other verdict
	if c.Get(StageSim, key, &other) {
		t.Error("stages must namespace keys")
	}
	st := c.Stats()
	if st.Stages[StageCheck].Hits != 2 || st.Stages[StageCheck].Misses != 1 {
		t.Errorf("check stats = %+v, want 2 hits / 1 miss", st.Stages[StageCheck])
	}
}

func TestLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Options{Capacity: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(StageCheck, "a", 1)
	c.Put(StageCheck, "b", 2)
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	var v int
	if !c.Get(StageCheck, "a", &v) {
		t.Fatal("expected hit on a")
	}
	c.Put(StageCheck, "c", 3)
	if c.Len() != 2 {
		t.Fatalf("LRU holds %d entries, capacity is 2", c.Len())
	}
	if c.Get(StageCheck, "b", &v) {
		t.Error("least-recently-used entry b survived eviction")
	}
	if !c.Get(StageCheck, "a", &v) || !c.Get(StageCheck, "c", &v) {
		t.Error("recently used entries were evicted")
	}
	if ev := c.Stats().Stages[StageCheck].Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	var v int
	if c.Get(StageCheck, "k", &v) {
		t.Error("nil cache hit")
	}
	c.Put(StageCheck, "k", 1) // must not panic
	if err := c.Close(); err != nil {
		t.Error(err)
	}
	if got := c.Stats(); got.Hits() != 0 || got.Misses() != 0 {
		t.Error("nil cache counted activity")
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(StageCheck, "k1", verdict{OK: true, Score: 1.5})
	c1.Put(StageDifftest, "k2", verdict{Score: -0.25, Notes: []string{"x"}})
	// Overwrites must respect last-write-wins on reload.
	c1.Put(StageCheck, "k1", verdict{OK: true, Score: 2.5})
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Stats().DiskLoaded != 2 {
		t.Errorf("loaded %d entries, want 2", c2.Stats().DiskLoaded)
	}
	var got verdict
	if !c2.Get(StageCheck, "k1", &got) || got.Score != 2.5 {
		t.Errorf("reloaded k1 = %+v, want Score 2.5", got)
	}
	if !c2.Get(StageDifftest, "k2", &got) || got.Score != -0.25 {
		t.Errorf("reloaded k2 = %+v", got)
	}

	sum, err := SummarizeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entries[StageCheck] != 1 || sum.Entries[StageDifftest] != 1 {
		t.Errorf("summary entries = %v", sum.Entries)
	}
	if sum.Stats.Stages[StageCheck].Stores != 2 {
		t.Errorf("cumulative stores = %+v, want 2 for check", sum.Stats.Stages[StageCheck])
	}
	if !strings.Contains(sum.Text(), "evaluation cache") {
		t.Error("summary text missing header")
	}
}

// TestCorruptDiskEntries: a store with garbage, truncated, and
// incomplete lines must open fine, serve the intact entries, and count
// the rest.
func TestCorruptDiskEntries(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"stage":"check","hash":"good1","val":{"OK":true,"Score":1,"Notes":null}}`,
		`this is not json`,
		`{"stage":"check","hash":"nocontent"}`,
		`{"stage":"","hash":"nostage","val":1}`,
		`{"stage":"difftest","hash":"good2","val":{"OK":false,"Score":3,"Notes":null}}`,
		`{"stage":"check","hash":"trunc","val":{"OK":tr`, // killed mid-write
	}
	if err := os.WriteFile(filepath.Join(dir, entriesFile),
		[]byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt stats sidecar must be ignored too.
	if err := os.WriteFile(filepath.Join(dir, statsFile), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("corrupt store must not be fatal: %v", err)
	}
	defer c.Close()
	st := c.Stats()
	if st.DiskLoaded != 2 || st.DiskSkipped != 4 {
		t.Errorf("loaded=%d skipped=%d, want 2/4", st.DiskLoaded, st.DiskSkipped)
	}
	var got verdict
	if !c.Get(StageCheck, "good1", &got) || got.Score != 1 {
		t.Error("intact entry good1 lost")
	}
	if !c.Get(StageDifftest, "good2", &got) || got.Score != 3 {
		t.Error("intact entry good2 lost")
	}
	if c.Get(StageCheck, "trunc", &got) {
		t.Error("truncated entry served")
	}
}

func TestEncodeFailureSkipsCaching(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	type bad struct{ F func() }
	c.Put(StageSim, "k", bad{})
	var out bad
	if c.Get(StageSim, "k", &out) {
		t.Error("unserializable value was cached")
	}
	if c.Stats().EncodeFailures != 1 {
		t.Errorf("EncodeFailures = %d, want 1", c.Stats().EncodeFailures)
	}
}

func TestGetIfRejectionCountsAsMiss(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(StageFuzz, "k", verdict{OK: true})
	var v verdict
	if c.GetIf(StageFuzz, "k", &v, func() bool { return false }) {
		t.Error("rejected entry reported as hit")
	}
	st := c.Stats().Stages[StageFuzz]
	if st.Hits != 0 || st.Misses != 1 {
		t.Errorf("stats = %+v, want the rejection counted as a miss", st)
	}
}

func TestStatsSubAndString(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	c.Put(StageCheck, "k", 1)
	var v int
	c.Get(StageCheck, "k", &v)
	c.Get(StageCheck, "missing", &v)
	d := c.Stats().Sub(before)
	if st := d.Stages[StageCheck]; st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("delta = %+v", st)
	}
	if s := d.String(); !strings.Contains(s, "check 1h/1m") {
		t.Errorf("String() = %q", s)
	}
	if (Stats{}).String() != "idle" {
		t.Errorf("empty stats String() = %q", (Stats{}).String())
	}
}
