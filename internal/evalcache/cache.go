// Package evalcache is a content-addressed cache for the expensive
// verdicts of the simulated HLS toolchain: the synthesizability
// checker's Report, the FPGA simulator's resource estimate, the
// differential-test outcome, and whole fuzzing campaigns. Every
// verdict in this module is a pure function of program text and
// configuration — the toolchain is deterministic and runs on a virtual
// clock — so a verdict computed once is correct forever and can be
// keyed on a fingerprint of its inputs.
//
// The cache carries *outcomes only*, never accounting: a hit skips the
// recomputation (and any real-time EvalDelay emulating an external
// toolchain process) but the caller still charges the same virtual
// toolchain cost, in the same commit order, as a cold run. That is
// what keeps Result, repair trajectories, and JSONL traces
// byte-identical whether the cache is disabled, cold, or warm — see
// the "Evaluation cache" section of docs/ARCHITECTURE.md.
//
// Storage is two-tier: a bounded in-memory LRU always, plus an
// optional on-disk JSONL store (Options.Dir) that persists entries
// across process runs, so a repeated `hgeval` sweep over P1-P10 warms
// once. Values cross the cache boundary as canonical JSON, which Go
// round-trips exactly (including float64), so a restored verdict is
// bit-identical to the stored one.
package evalcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hetero/heterogen/internal/obs"
)

// Stage names one cached verdict kind. Keys are namespaced per stage,
// and hit/miss statistics are broken out per stage.
type Stage string

const (
	// StageCheck caches hls.Report verdicts of the full
	// synthesizability checker.
	StageCheck Stage = "check"
	// StageSim caches sim.Resources estimates of the FPGA simulator.
	StageSim Stage = "sim"
	// StageDifftest caches difftest.Report outcomes (pass/fail per
	// test, first divergence, CPU/FPGA mean latency).
	StageDifftest Stage = "difftest"
	// StageFuzz caches whole fuzzing campaigns (generated corpus,
	// coverage, virtual clock, and — when tracing — the event stream).
	StageFuzz Stage = "fuzz"
)

// Stages lists every stage in reporting order.
func Stages() []Stage {
	return []Stage{StageCheck, StageSim, StageDifftest, StageFuzz}
}

// formatVersion salts every fingerprint. Bump it whenever the
// serialized form of any cached verdict, or the meaning of any key
// component, changes: old on-disk entries then miss instead of
// deserializing into the wrong shape.
const formatVersion = 2

// Fingerprint hashes an ordered list of key components into a hex
// content address. Components are length-prefixed, so the boundary
// between them is part of the hash ("ab","c" differs from "a","bc"),
// and the cache format version salts every key.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(formatVersion))
	h.Write(n[:])
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Options configures a cache.
type Options struct {
	// Capacity bounds the in-memory LRU tier in entries (default 4096).
	Capacity int
	// Dir, when non-empty, enables the persistent tier: entries append
	// to <dir>/entries.jsonl and cumulative statistics merge into
	// <dir>/stats.json on Close. The directory is created if missing.
	Dir string
	// Metrics, when non-nil, mirrors hit/miss/store/evict counters into
	// the run's metrics registry as cache.<kind>.<stage>. Statistics
	// never ride in traces, which is what keeps traces byte-identical
	// across cold and warm runs (hit counts legitimately differ).
	Metrics *obs.Registry
	// Warn, when non-nil, receives the one-line notice emitted when the
	// persistent tier degrades (unopenable directory, failed append).
	// Emitted at most once per cache.
	Warn func(string)
}

// DefaultCapacity is the in-memory LRU bound when Options.Capacity is
// zero. Sized for a full hgeval sweep: the largest repair searches try
// a few hundred candidates, each contributing at most three entries.
const DefaultCapacity = 4096

// StageStats counts one stage's cache activity.
type StageStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
}

func (s StageStats) add(o StageStats) StageStats {
	return StageStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Stores:    s.Stores + o.Stores,
		Evictions: s.Evictions + o.Evictions,
	}
}

// Stats is a point-in-time snapshot of cache activity, per stage plus
// persistence health counters.
type Stats struct {
	Stages map[Stage]StageStats `json:"stages,omitempty"`
	// DiskLoaded / DiskSkipped count persistent entries restored and
	// rejected (corrupt or truncated lines) when the cache opened.
	DiskLoaded  int64 `json:"disk_loaded,omitempty"`
	DiskSkipped int64 `json:"disk_skipped,omitempty"`
	// EncodeFailures counts values that could not be serialized (and
	// were therefore not cached — Put degrades to a no-op).
	EncodeFailures int64 `json:"encode_failures,omitempty"`
	// DiskWriteFailures counts persistent-tier writes that failed. After
	// the first one the cache degrades to in-memory operation: verdicts
	// stay correct, they just stop persisting.
	DiskWriteFailures int64 `json:"disk_write_failures,omitempty"`
}

// Hits sums hits over all stages.
func (s Stats) Hits() int64 {
	var n int64
	for _, st := range s.Stages {
		n += st.Hits
	}
	return n
}

// Misses sums misses over all stages.
func (s Stats) Misses() int64 {
	var n int64
	for _, st := range s.Stages {
		n += st.Misses
	}
	return n
}

// Sub returns the activity between snapshot prev and this one, for
// attributing deltas to one pipeline run on a shared cache.
func (s Stats) Sub(prev Stats) Stats {
	out := Stats{
		DiskLoaded:        s.DiskLoaded - prev.DiskLoaded,
		DiskSkipped:       s.DiskSkipped - prev.DiskSkipped,
		EncodeFailures:    s.EncodeFailures - prev.EncodeFailures,
		DiskWriteFailures: s.DiskWriteFailures - prev.DiskWriteFailures,
	}
	for stage, st := range s.Stages {
		p := prev.Stages[stage]
		d := StageStats{
			Hits:      st.Hits - p.Hits,
			Misses:    st.Misses - p.Misses,
			Stores:    st.Stores - p.Stores,
			Evictions: st.Evictions - p.Evictions,
		}
		if d != (StageStats{}) {
			if out.Stages == nil {
				out.Stages = map[Stage]StageStats{}
			}
			out.Stages[stage] = d
		}
	}
	return out
}

// merge accumulates another snapshot (used for the cumulative
// stats.json sidecar).
func (s Stats) merge(o Stats) Stats {
	out := Stats{
		DiskLoaded:        s.DiskLoaded + o.DiskLoaded,
		DiskSkipped:       s.DiskSkipped + o.DiskSkipped,
		EncodeFailures:    s.EncodeFailures + o.EncodeFailures,
		DiskWriteFailures: s.DiskWriteFailures + o.DiskWriteFailures,
	}
	for _, src := range []Stats{s, o} {
		for stage, st := range src.Stages {
			if out.Stages == nil {
				out.Stages = map[Stage]StageStats{}
			}
			out.Stages[stage] = out.Stages[stage].add(st)
		}
	}
	return out
}

// String renders the snapshot as a compact per-stage summary, e.g.
// "check 12h/3m; difftest 9h/3m".
func (s Stats) String() string {
	var parts []string
	for _, stage := range Stages() {
		st, ok := s.Stages[stage]
		if !ok || (st.Hits == 0 && st.Misses == 0) {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %dh/%dm", stage, st.Hits, st.Misses))
	}
	if len(parts) == 0 {
		return "idle"
	}
	return strings.Join(parts, "; ")
}

// key addresses one entry.
type key struct {
	stage Stage
	hash  string
}

// entry is one LRU element's payload.
type entry struct {
	k   key
	val json.RawMessage
}

// Cache is the two-tier verdict store. All methods are safe for
// concurrent use (repair workers and parallel eval subjects share one
// cache), and all are nil-safe: a nil *Cache behaves as a disabled
// cache (Get always misses without counting, Put and Close are no-ops),
// so callers never need to branch on whether caching is on.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	mem      map[key]*list.Element
	// disk is the persistent tier's in-process image: entries loaded
	// from Dir at open plus everything stored since. It is unbounded —
	// persistence means never forgetting within a run — while the LRU
	// tier alone bounds memory for purely in-memory caches.
	disk    map[key]json.RawMessage
	store   *diskStore
	metrics *obs.Registry
	warn    func(string)
	warned  bool
	stats   Stats
}

// New opens a cache. With Options.Dir set, existing entries are loaded
// (corrupt or truncated lines are counted and skipped, never fatal)
// and the store is opened for append. A persistent tier that cannot be
// opened is never fatal either: the cache degrades to in-memory
// operation with a one-line warning and a DiskWriteFailures count —
// verdicts are an optimization, so losing persistence must not abort
// the run. The returned error is always nil today; the signature keeps
// room for future hard failures.
func New(opts Options) (*Cache, error) {
	c := &Cache{
		capacity: opts.Capacity,
		ll:       list.New(),
		mem:      map[key]*list.Element{},
		metrics:  opts.Metrics,
		warn:     opts.Warn,
		stats:    Stats{Stages: map[Stage]StageStats{}},
	}
	if c.capacity <= 0 {
		c.capacity = DefaultCapacity
	}
	if opts.Dir != "" {
		store, loaded, skipped, err := openDiskStore(opts.Dir)
		if err != nil {
			c.degrade(fmt.Sprintf("evalcache: persistent tier disabled: %v", err))
			return c, nil
		}
		c.store = store
		c.disk = loaded
		c.stats.DiskLoaded = int64(len(loaded))
		c.stats.DiskSkipped = skipped
	}
	return c, nil
}

// degrade records a persistent-tier failure and drops to in-memory
// operation. The warning fires at most once per cache; the counter and
// metric record every occurrence.
func (c *Cache) degrade(msg string) {
	c.mu.Lock()
	if c.store != nil {
		c.store.discard()
		c.store = nil
	}
	c.stats.DiskWriteFailures++
	first := !c.warned
	c.warned = true
	warn := c.warn
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.Add("cache.disk_degraded", 1)
	}
	if first && warn != nil {
		warn(msg)
	}
}

// Get looks an entry up and, on a hit, unmarshals the stored verdict
// into out (a pointer), always into freshly allocated storage — two
// hits never alias. Returns false (a counted miss) when absent or when
// the stored bytes no longer decode.
func (c *Cache) Get(stage Stage, hash string, out any) bool {
	return c.GetIf(stage, hash, out, nil)
}

// GetIf is Get with an acceptance predicate, consulted after a
// successful decode: an entry the caller rejects counts as a miss (the
// caller will recompute and overwrite). The fuzz stage uses it — a
// campaign memoized without its event stream cannot serve a traced
// run.
func (c *Cache) GetIf(stage Stage, hash string, out any, accept func() bool) bool {
	if c == nil {
		return false
	}
	k := key{stage, hash}
	c.mu.Lock()
	raw, found := c.lookup(k)
	c.mu.Unlock()
	ok := found
	if ok && json.Unmarshal(raw, out) != nil {
		ok = false
	}
	if ok && accept != nil && !accept() {
		ok = false
	}
	c.count(stage, ok)
	return ok
}

// lookup consults the LRU tier then the persistent image, promoting
// hits to the LRU front. Caller holds c.mu.
func (c *Cache) lookup(k key) (json.RawMessage, bool) {
	if el, ok := c.mem[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	if raw, ok := c.disk[k]; ok {
		c.insert(k, raw)
		return raw, true
	}
	return nil, false
}

// count records one hit or miss under the lock and mirrors it to the
// metrics registry outside it.
func (c *Cache) count(stage Stage, hit bool) {
	c.mu.Lock()
	st := c.stats.Stages[stage]
	if hit {
		st.Hits++
	} else {
		st.Misses++
	}
	c.stats.Stages[stage] = st
	c.mu.Unlock()
	if c.metrics != nil {
		if hit {
			c.metrics.Add("cache.hits."+string(stage), 1)
		} else {
			c.metrics.Add("cache.misses."+string(stage), 1)
		}
	}
}

// Put stores a verdict under its content address. Values that fail to
// serialize (e.g. NaN latencies) are skipped — the cache degrades to a
// recomputation, never an error.
func (c *Cache) Put(stage Stage, hash string, val any) {
	if c == nil {
		return
	}
	raw, err := json.Marshal(val)
	if err != nil {
		c.mu.Lock()
		c.stats.EncodeFailures++
		c.mu.Unlock()
		return
	}
	k := key{stage, hash}
	var evicted int64
	c.mu.Lock()
	if el, ok := c.mem[k]; ok {
		el.Value.(*entry).val = raw
		c.ll.MoveToFront(el)
	} else {
		c.insert(k, raw)
	}
	if c.disk != nil {
		c.disk[k] = raw
	}
	st := c.stats.Stages[stage]
	st.Stores++
	c.stats.Stages[stage] = st
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		victim := back.Value.(*entry)
		delete(c.mem, victim.k)
		c.ll.Remove(back)
		vs := c.stats.Stages[victim.k.stage]
		vs.Evictions++
		c.stats.Stages[victim.k.stage] = vs
		evicted++
	}
	var storeErr error
	if c.store != nil {
		storeErr = c.store.append(k, raw)
	}
	c.mu.Unlock()
	if storeErr != nil {
		// A failed append only loses persistence: drop the disk tier,
		// keep serving from memory.
		c.degrade(fmt.Sprintf("evalcache: persistent tier disabled: %v", storeErr))
	}
	if c.metrics != nil {
		c.metrics.Add("cache.stores."+string(stage), 1)
		if evicted > 0 {
			c.metrics.Add("cache.evictions", evicted)
		}
	}
}

// insert adds a fresh LRU entry at the front. Caller holds c.mu.
func (c *Cache) insert(k key, raw json.RawMessage) {
	c.mem[k] = c.ll.PushFront(&entry{k: k, val: raw})
}

// Stats snapshots current activity.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{
		DiskLoaded:        c.stats.DiskLoaded,
		DiskSkipped:       c.stats.DiskSkipped,
		EncodeFailures:    c.stats.EncodeFailures,
		DiskWriteFailures: c.stats.DiskWriteFailures,
	}
	if len(c.stats.Stages) > 0 {
		out.Stages = make(map[Stage]StageStats, len(c.stats.Stages))
		for k, v := range c.stats.Stages {
			out.Stages[k] = v
		}
	}
	return out
}

// Len reports the in-memory LRU entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Close flushes the persistent tier and merges this cache's lifetime
// statistics into <dir>/stats.json, so hgtrace can report cumulative
// hit rates across runs. A nil or memory-only cache closes trivially.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	store := c.store
	c.store = nil
	stats := c.stats
	c.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.close(stats)
}

// sortedStages returns a Stats' stages in canonical reporting order
// (known stages first, unknown ones alphabetically after).
func sortedStages(m map[Stage]StageStats) []Stage {
	known := map[Stage]bool{}
	var out []Stage
	for _, s := range Stages() {
		if _, ok := m[s]; ok {
			out = append(out, s)
			known[s] = true
		}
	}
	var rest []Stage
	for s := range m {
		if !known[s] {
			rest = append(rest, s)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append(out, rest...)
}
