package evalcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hetero/heterogen/internal/obs"
)

// Stage names one cached verdict kind. Keys are namespaced per stage,
// and hit/miss statistics are broken out per stage.
type Stage string

const (
	// StageCheck caches hls.Report verdicts of the full
	// synthesizability checker.
	StageCheck Stage = "check"
	// StageSim caches sim.Resources estimates of the FPGA simulator.
	StageSim Stage = "sim"
	// StageDifftest caches difftest.Report outcomes (pass/fail per
	// test, first divergence, CPU/FPGA mean latency).
	StageDifftest Stage = "difftest"
	// StageFuzz caches whole fuzzing campaigns (generated corpus,
	// coverage, virtual clock, and — when tracing — the event stream).
	StageFuzz Stage = "fuzz"
)

// Stages lists every stage in reporting order.
func Stages() []Stage {
	return []Stage{StageCheck, StageSim, StageDifftest, StageFuzz}
}

// formatVersion salts every fingerprint. Bump it whenever the
// serialized form of any cached verdict, or the meaning of any key
// component, changes: old on-disk entries then miss instead of
// deserializing into the wrong shape. Version 3: the repair search's
// fast evaluation path addresses per-candidate entries by incremental
// content fingerprint (cast.Fingerprints) instead of the full printed
// text, so keys written by version 2 are a clean miss.
const formatVersion = 3

// Fingerprint hashes an ordered list of key components into a hex
// content address. Components are length-prefixed, so the boundary
// between them is part of the hash ("ab","c" differs from "a","bc"),
// and the cache format version salts every key.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(formatVersion))
	h.Write(n[:])
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Options configures a cache.
type Options struct {
	// Capacity bounds the in-memory LRU tier in entries (default 4096).
	// With Shards > 1 the bound is divided evenly across shards
	// (rounding up), so the whole-cache bound stays within one entry
	// per shard of the configured value.
	Capacity int
	// Dir, when non-empty, enables the persistent tier: entries append
	// to <dir>/entries.jsonl (shard 0; additional shards use
	// <dir>/entries-<i>.jsonl) and cumulative statistics merge into
	// <dir>/stats.json on Close. The directory is created if missing.
	// On open, every entries file present is loaded and each entry is
	// routed to its owning shard under the current shard count, so a
	// directory written with any Shards value serves a cache opened
	// with any other.
	Dir string
	// Shards splits the cache into that many independent shards, each
	// with its own lock, LRU tier, disk image, and append file, keyed
	// by a hash of the entry's content address. Concurrent jobs (the
	// hgserve pool) then contend on len(shards) locks instead of one.
	// 0 or 1 keeps the single-shard layout; sharded and unsharded
	// caches return byte-identical verdicts (TestShardParity).
	Shards int
	// Metrics, when non-nil, mirrors hit/miss/store/evict counters into
	// the run's metrics registry as cache.<kind>.<stage>. Statistics
	// never ride in traces, which is what keeps traces byte-identical
	// across cold and warm runs (hit counts legitimately differ).
	Metrics *obs.Registry
	// Warn, when non-nil, receives the one-line notice emitted when the
	// persistent tier degrades (unopenable directory, failed append).
	// Emitted at most once per cache.
	Warn func(string)
	// CompactMinBytes enables on-open compaction of the persistent
	// tier: when the entries files total at least this many bytes AND
	// their garbage fraction (bytes not backing a live entry — stale
	// overwrites, shard-count leftovers, corrupt lines) reaches
	// CompactGarbage, the store is rewritten to exactly the live
	// entries under the current shard count. The rewrite is crash-safe
	// at every point: new shard images build as invisible .tmp files,
	// are fsynced, and replace the old files by atomic rename; a kill
	// anywhere leaves a store that loads every live entry (possibly
	// duplicated across old and new copies — either is valid, the
	// content address never lies). 0 disables compaction.
	CompactMinBytes int64
	// CompactGarbage is the garbage fraction in [0,1) that triggers
	// compaction once CompactMinBytes is reached (default 0.5).
	CompactGarbage float64
}

// DefaultCapacity is the in-memory LRU bound when Options.Capacity is
// zero. Sized for a full hgeval sweep: the largest repair searches try
// a few hundred candidates, each contributing at most three entries.
const DefaultCapacity = 4096

// StageStats counts one stage's cache activity.
type StageStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
}

func (s StageStats) add(o StageStats) StageStats {
	return StageStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Stores:    s.Stores + o.Stores,
		Evictions: s.Evictions + o.Evictions,
	}
}

// Stats is a point-in-time snapshot of cache activity, per stage plus
// persistence health counters. For a sharded cache every field is the
// aggregate over all shards.
type Stats struct {
	Stages map[Stage]StageStats `json:"stages,omitempty"`
	// DiskLoaded / DiskSkipped count persistent entries restored and
	// rejected (corrupt or truncated lines) when the cache opened.
	DiskLoaded  int64 `json:"disk_loaded,omitempty"`
	DiskSkipped int64 `json:"disk_skipped,omitempty"`
	// EncodeFailures counts values that could not be serialized (and
	// were therefore not cached — Put degrades to a no-op).
	EncodeFailures int64 `json:"encode_failures,omitempty"`
	// DiskWriteFailures counts persistent-tier writes that failed. After
	// the first one the affected shard degrades to in-memory operation:
	// verdicts stay correct, they just stop persisting.
	DiskWriteFailures int64 `json:"disk_write_failures,omitempty"`
	// Compactions counts on-open store rewrites (Options.CompactMinBytes);
	// CompactedBytes is the total file-size reduction they achieved.
	Compactions    int64 `json:"compactions,omitempty"`
	CompactedBytes int64 `json:"compacted_bytes,omitempty"`
}

// Hits sums hits over all stages.
func (s Stats) Hits() int64 {
	var n int64
	for _, st := range s.Stages {
		n += st.Hits
	}
	return n
}

// Misses sums misses over all stages.
func (s Stats) Misses() int64 {
	var n int64
	for _, st := range s.Stages {
		n += st.Misses
	}
	return n
}

// Sub returns the activity between snapshot prev and this one, for
// attributing deltas to one pipeline run on a shared cache.
func (s Stats) Sub(prev Stats) Stats {
	out := Stats{
		DiskLoaded:        s.DiskLoaded - prev.DiskLoaded,
		DiskSkipped:       s.DiskSkipped - prev.DiskSkipped,
		EncodeFailures:    s.EncodeFailures - prev.EncodeFailures,
		DiskWriteFailures: s.DiskWriteFailures - prev.DiskWriteFailures,
		Compactions:       s.Compactions - prev.Compactions,
		CompactedBytes:    s.CompactedBytes - prev.CompactedBytes,
	}
	for stage, st := range s.Stages {
		p := prev.Stages[stage]
		d := StageStats{
			Hits:      st.Hits - p.Hits,
			Misses:    st.Misses - p.Misses,
			Stores:    st.Stores - p.Stores,
			Evictions: st.Evictions - p.Evictions,
		}
		if d != (StageStats{}) {
			if out.Stages == nil {
				out.Stages = map[Stage]StageStats{}
			}
			out.Stages[stage] = d
		}
	}
	return out
}

// merge accumulates another snapshot (used for the cumulative
// stats.json sidecar and for aggregating shard snapshots).
func (s Stats) merge(o Stats) Stats {
	out := Stats{
		DiskLoaded:        s.DiskLoaded + o.DiskLoaded,
		DiskSkipped:       s.DiskSkipped + o.DiskSkipped,
		EncodeFailures:    s.EncodeFailures + o.EncodeFailures,
		DiskWriteFailures: s.DiskWriteFailures + o.DiskWriteFailures,
		Compactions:       s.Compactions + o.Compactions,
		CompactedBytes:    s.CompactedBytes + o.CompactedBytes,
	}
	for _, src := range []Stats{s, o} {
		for stage, st := range src.Stages {
			if out.Stages == nil {
				out.Stages = map[Stage]StageStats{}
			}
			out.Stages[stage] = out.Stages[stage].add(st)
		}
	}
	return out
}

// String renders the snapshot as a compact per-stage summary, e.g.
// "check 12h/3m; difftest 9h/3m".
func (s Stats) String() string {
	var parts []string
	for _, stage := range Stages() {
		st, ok := s.Stages[stage]
		if !ok || (st.Hits == 0 && st.Misses == 0) {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %dh/%dm", stage, st.Hits, st.Misses))
	}
	if len(parts) == 0 {
		return "idle"
	}
	return strings.Join(parts, "; ")
}

// key addresses one entry.
type key struct {
	stage Stage
	hash  string
}

// entry is one LRU element's payload.
type entry struct {
	k   key
	val json.RawMessage
}

// shard is one independent slice of the cache: its own lock, LRU tier,
// persistent image, append handle, and statistics. All cross-shard
// aggregation happens in Cache; a shard never touches another shard.
type shard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	mem      map[key]*list.Element
	// disk is the persistent tier's in-process image: entries loaded
	// from Dir at open plus everything stored since. It is unbounded —
	// persistence means never forgetting within a run — while the LRU
	// tier alone bounds memory for purely in-memory caches.
	disk  map[key]json.RawMessage
	store *diskStore
	stats Stats
}

// Cache is the two-tier, optionally sharded verdict store. All methods
// are safe for concurrent use (repair workers, parallel eval subjects,
// and hgserve jobs share one cache), and all are nil-safe: a nil *Cache
// behaves as a disabled cache (Get always misses without counting, Put
// and Close are no-ops), so callers never need to branch on whether
// caching is on.
type Cache struct {
	shards  []*shard
	dir     string
	metrics *obs.Registry

	// diskLoaded / diskSkipped / compactions / compactedBytes are set
	// once at open, before the cache is shared.
	diskLoaded     int64
	diskSkipped    int64
	compactions    int64
	compactedBytes int64
	// encodeFailures counts Put values that failed to serialize; it is
	// the one counter incremented before an entry is routed to a shard.
	encodeFailures atomic.Int64

	warnMu sync.Mutex
	warn   func(string)
	warned bool
}

// New opens a cache. With Options.Dir set, existing entries are loaded
// (corrupt or truncated lines are counted and skipped, never fatal)
// and one append store is opened per shard. A persistent tier that
// cannot be opened is never fatal either: the cache degrades to
// in-memory operation with a one-line warning and a DiskWriteFailures
// count — verdicts are an optimization, so losing persistence must not
// abort the run. The returned error is always nil today; the signature
// keeps room for future hard failures.
func New(opts Options) (*Cache, error) {
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = 1
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := (capacity + nshards - 1) / nshards
	c := &Cache{
		shards:  make([]*shard, nshards),
		metrics: opts.Metrics,
		warn:    opts.Warn,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: perShard,
			ll:       list.New(),
			mem:      map[key]*list.Element{},
			stats:    Stats{Stages: map[Stage]StageStats{}},
		}
	}
	if opts.Dir != "" {
		c.dir = opts.Dir
		loaded, skipped, err := loadDir(opts.Dir)
		if err != nil {
			// The whole persistent tier is unusable (e.g. the directory
			// cannot be created): every shard stays memory-only.
			c.shards[0].stats.DiskWriteFailures++
			c.degradeNotice(fmt.Sprintf("evalcache: persistent tier disabled: %v", err))
			return c, nil
		}
		c.diskLoaded = int64(len(loaded))
		c.diskSkipped = skipped
		// Leftover .tmp images from a compaction a crash interrupted are
		// dead weight: they were never renamed into place and are always
		// rebuilt from scratch, so sweep them before deciding anew.
		removeStaleTmps(opts.Dir)
		if opts.CompactMinBytes > 0 {
			garbage := opts.CompactGarbage
			if garbage <= 0 {
				garbage = 0.5
			}
			if due, before := compactionDue(opts.Dir, loaded, opts.CompactMinBytes, garbage); due {
				if err := compactDir(opts.Dir, loaded, nshards); err != nil {
					c.degradeNotice(fmt.Sprintf("evalcache: compaction failed: %v", err))
				} else {
					after := storeBytes(opts.Dir)
					c.compactions = 1
					c.compactedBytes = before - after
					if opts.Metrics != nil {
						opts.Metrics.Add("cache.compactions", 1)
						opts.Metrics.Add("cache.compacted_bytes", before-after)
					}
				}
			}
		}
		for i, sh := range c.shards {
			sh.disk = map[key]json.RawMessage{}
			store, err := openAppend(opts.Dir, i)
			if err != nil {
				sh.stats.DiskWriteFailures++
				c.degradeNotice(fmt.Sprintf("evalcache: persistent tier disabled: %v", err))
				continue
			}
			sh.store = store
		}
		// Entries are routed to their owning shard under the *current*
		// shard count, regardless of which file they were read from, so
		// reopening a directory with a different Shards value loses
		// nothing.
		for k, raw := range loaded {
			c.shardFor(k.hash).disk[k] = raw
		}
	}
	return c, nil
}

// shardFor routes a content address to its owning shard. The routing
// hash is independent of the sha256 content address' own structure, so
// any key string — hex or not — distributes.
func (c *Cache) shardFor(hash string) *shard {
	return c.shards[shardIndex(hash, len(c.shards))]
}

// shardIndex is the routing function itself, shared with compaction
// (which rewrites files under the current shard count before any shard
// struct exists).
func shardIndex(hash string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(hash))
	return int(h.Sum32() % uint32(n))
}

// degradeNotice emits the once-per-cache persistence warning and the
// per-occurrence metric. Counting into shard stats is the caller's job
// (it owns the relevant lock).
func (c *Cache) degradeNotice(msg string) {
	c.warnMu.Lock()
	first := !c.warned
	c.warned = true
	warn := c.warn
	c.warnMu.Unlock()
	if c.metrics != nil {
		c.metrics.Add("cache.disk_degraded", 1)
	}
	if first && warn != nil {
		warn(msg)
	}
}

// degradeShard records a persistent-tier failure on one shard and drops
// that shard to in-memory operation. Other shards keep persisting.
func (c *Cache) degradeShard(sh *shard, msg string) {
	sh.mu.Lock()
	if sh.store != nil {
		sh.store.discard()
		sh.store = nil
	}
	sh.stats.DiskWriteFailures++
	sh.mu.Unlock()
	c.degradeNotice(msg)
}

// Get looks an entry up and, on a hit, unmarshals the stored verdict
// into out (a pointer), always into freshly allocated storage — two
// hits never alias. Returns false (a counted miss) when absent or when
// the stored bytes no longer decode.
func (c *Cache) Get(stage Stage, hash string, out any) bool {
	return c.GetIf(stage, hash, out, nil)
}

// GetIf is Get with an acceptance predicate, consulted after a
// successful decode: an entry the caller rejects counts as a miss (the
// caller will recompute and overwrite). The fuzz stage uses it — a
// campaign memoized without its event stream cannot serve a traced
// run.
func (c *Cache) GetIf(stage Stage, hash string, out any, accept func() bool) bool {
	if c == nil {
		return false
	}
	k := key{stage, hash}
	sh := c.shardFor(hash)
	sh.mu.Lock()
	raw, found := sh.lookup(k)
	sh.mu.Unlock()
	ok := found
	if ok && json.Unmarshal(raw, out) != nil {
		ok = false
	}
	if ok && accept != nil && !accept() {
		ok = false
	}
	c.count(sh, stage, ok)
	return ok
}

// lookup consults the LRU tier then the persistent image, promoting
// hits to the LRU front. Caller holds sh.mu.
func (sh *shard) lookup(k key) (json.RawMessage, bool) {
	if el, ok := sh.mem[k]; ok {
		sh.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	if raw, ok := sh.disk[k]; ok {
		sh.insert(k, raw)
		return raw, true
	}
	return nil, false
}

// count records one hit or miss under the shard lock and mirrors it to
// the metrics registry outside it.
func (c *Cache) count(sh *shard, stage Stage, hit bool) {
	sh.mu.Lock()
	st := sh.stats.Stages[stage]
	if hit {
		st.Hits++
	} else {
		st.Misses++
	}
	sh.stats.Stages[stage] = st
	sh.mu.Unlock()
	if c.metrics != nil {
		if hit {
			c.metrics.Add("cache.hits."+string(stage), 1)
		} else {
			c.metrics.Add("cache.misses."+string(stage), 1)
		}
	}
}

// Put stores a verdict under its content address. Values that fail to
// serialize (e.g. NaN latencies) are skipped — the cache degrades to a
// recomputation, never an error.
func (c *Cache) Put(stage Stage, hash string, val any) {
	if c == nil {
		return
	}
	raw, err := json.Marshal(val)
	if err != nil {
		c.encodeFailures.Add(1)
		return
	}
	k := key{stage, hash}
	sh := c.shardFor(hash)
	var evicted int64
	sh.mu.Lock()
	if el, ok := sh.mem[k]; ok {
		el.Value.(*entry).val = raw
		sh.ll.MoveToFront(el)
	} else {
		sh.insert(k, raw)
	}
	if sh.disk != nil {
		sh.disk[k] = raw
	}
	st := sh.stats.Stages[stage]
	st.Stores++
	sh.stats.Stages[stage] = st
	for sh.ll.Len() > sh.capacity {
		back := sh.ll.Back()
		victim := back.Value.(*entry)
		delete(sh.mem, victim.k)
		sh.ll.Remove(back)
		vs := sh.stats.Stages[victim.k.stage]
		vs.Evictions++
		sh.stats.Stages[victim.k.stage] = vs
		evicted++
	}
	var storeErr error
	if sh.store != nil {
		storeErr = sh.store.append(k, raw)
	}
	sh.mu.Unlock()
	if storeErr != nil {
		// A failed append only loses persistence on this shard: drop its
		// disk tier, keep serving from memory.
		c.degradeShard(sh, fmt.Sprintf("evalcache: persistent tier disabled: %v", storeErr))
	}
	if c.metrics != nil {
		c.metrics.Add("cache.stores."+string(stage), 1)
		if evicted > 0 {
			c.metrics.Add("cache.evictions", evicted)
		}
	}
}

// insert adds a fresh LRU entry at the front. Caller holds sh.mu.
func (sh *shard) insert(k key, raw json.RawMessage) {
	sh.mem[k] = sh.ll.PushFront(&entry{k: k, val: raw})
}

// Stats snapshots current activity, aggregated over all shards.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	out := Stats{
		DiskLoaded:     c.diskLoaded,
		DiskSkipped:    c.diskSkipped,
		EncodeFailures: c.encodeFailures.Load(),
		Compactions:    c.compactions,
		CompactedBytes: c.compactedBytes,
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		snap := Stats{DiskWriteFailures: sh.stats.DiskWriteFailures}
		if len(sh.stats.Stages) > 0 {
			snap.Stages = make(map[Stage]StageStats, len(sh.stats.Stages))
			for k, v := range sh.stats.Stages {
				snap.Stages[k] = v
			}
		}
		sh.mu.Unlock()
		out = out.merge(snap)
	}
	return out
}

// Shards reports the shard count (1 for an unsharded cache, 0 for nil).
func (c *Cache) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Len reports the in-memory LRU entry count over all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Close flushes every shard's persistent tier and merges this cache's
// lifetime statistics into <dir>/stats.json, so hgtrace can report
// cumulative hit rates across runs. A nil or memory-only cache closes
// trivially. The first flush error is returned; the sidecar is still
// written for the shards that flushed.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	stats := c.Stats()
	var firstErr error
	hadStore := false
	for _, sh := range c.shards {
		sh.mu.Lock()
		store := sh.store
		sh.store = nil
		sh.mu.Unlock()
		if store == nil {
			continue
		}
		hadStore = true
		if err := store.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if !hadStore {
		return nil
	}
	if err := mergeSidecar(c.dir, stats); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// sortedStages returns a Stats' stages in canonical reporting order
// (known stages first, unknown ones alphabetically after).
func sortedStages(m map[Stage]StageStats) []Stage {
	known := map[Stage]bool{}
	var out []Stage
	for _, s := range Stages() {
		if _, ok := m[s]; ok {
			out = append(out, s)
			known[s] = true
		}
	}
	var rest []Stage
	for s := range m {
		if !known[s] {
			rest = append(rest, s)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append(out, rest...)
}
