package evalcache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The persistent tier is a single append-only JSONL file plus a small
// statistics sidecar:
//
//	<dir>/entries.jsonl   one {"stage","hash","val"} object per line
//	<dir>/stats.json      cumulative Stats merged on every Close
//
// Append-only JSONL makes the store crash-tolerant by construction: a
// process killed mid-write leaves at most one truncated final line,
// which the loader skips (and counts) like any other corrupt line.
// Duplicate lines are legal — the last write for a key wins, matching
// overwrite semantics of the in-memory tier.

const (
	entriesFile = "entries.jsonl"
	statsFile   = "stats.json"
)

// maxEntryLine bounds one serialized entry (fuzz campaigns with event
// streams are the largest, hundreds of KB). Longer lines are treated
// as corrupt on load.
const maxEntryLine = 64 << 20

// diskEntry is the JSONL line format.
type diskEntry struct {
	Stage Stage           `json:"stage"`
	Hash  string          `json:"hash"`
	Val   json.RawMessage `json:"val"`
}

// diskStore is the open append handle.
type diskStore struct {
	dir string
	f   *os.File
	w   *bufio.Writer
}

// openDiskStore creates dir if needed, loads every well-formed entry
// from entries.jsonl, and opens the file for append. Malformed lines
// are skipped and counted, never fatal: the cache must survive a
// corrupted or truncated store (e.g. a run killed mid-write).
func openDiskStore(dir string) (*diskStore, map[key]json.RawMessage, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("evalcache: create dir: %w", err)
	}
	path := filepath.Join(dir, entriesFile)
	loaded := map[key]json.RawMessage{}
	var skipped int64
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 64*1024), maxEntryLine)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var e diskEntry
			if json.Unmarshal(line, &e) != nil || e.Stage == "" || e.Hash == "" || len(e.Val) == 0 {
				skipped++
				continue
			}
			loaded[key{e.Stage, e.Hash}] = append(json.RawMessage(nil), e.Val...)
		}
		if sc.Err() != nil {
			// An over-long or unreadable tail: everything before it
			// loaded fine; what remains is unrecoverable.
			skipped++
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("evalcache: open store: %w", err)
	}
	return &diskStore{dir: dir, f: f, w: bufio.NewWriter(f)}, loaded, skipped, nil
}

// append writes one entry line.
func (s *diskStore) append(k key, raw json.RawMessage) error {
	line, err := json.Marshal(diskEntry{Stage: k.stage, Hash: k.hash, Val: raw})
	if err != nil {
		return err
	}
	if _, err := s.w.Write(line); err != nil {
		return err
	}
	return s.w.WriteByte('\n')
}

// discard abandons the append handle without flushing buffered writes
// or touching the stats sidecar — used when the cache degrades to
// in-memory operation after a write failure.
func (s *diskStore) discard() {
	_ = s.f.Close()
}

// close flushes entries and merges stats into the cumulative sidecar.
func (s *diskStore) close(stats Stats) error {
	flushErr := s.w.Flush()
	if err := s.f.Close(); flushErr == nil {
		flushErr = err
	}
	// Merge this run's activity into the cumulative sidecar. A corrupt
	// or missing sidecar restarts the count rather than failing.
	path := filepath.Join(s.dir, statsFile)
	var prior Stats
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &prior)
	}
	merged := prior.merge(stats)
	data, err := json.MarshalIndent(merged, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if flushErr != nil {
		return flushErr
	}
	return err
}

// DirSummary describes a persistent cache directory: the live entry
// population (after last-write-wins dedup) and the cumulative
// statistics of every run that wrote to it.
type DirSummary struct {
	Dir string `json:"dir"`
	// Entries / Bytes count live entries and their serialized size per
	// stage.
	Entries map[Stage]int   `json:"entries,omitempty"`
	Bytes   map[Stage]int64 `json:"bytes,omitempty"`
	// Skipped counts malformed entry lines encountered in this scan.
	Skipped int64 `json:"skipped,omitempty"`
	// Stats is the cumulative activity from stats.json (zero when no
	// run has closed the cache yet).
	Stats Stats `json:"stats"`
}

// SummarizeDir scans a persistent cache directory for reporting
// (hgtrace's cache section). Missing files yield an empty summary, not
// an error; the error is reserved for an unreadable directory.
func SummarizeDir(dir string) (DirSummary, error) {
	sum := DirSummary{Dir: dir}
	if _, err := os.Stat(dir); err != nil {
		return sum, fmt.Errorf("evalcache: %w", err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, entriesFile)); err == nil {
		seen := map[key]int{}
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 64*1024), maxEntryLine)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var e diskEntry
			if json.Unmarshal(line, &e) != nil || e.Stage == "" || e.Hash == "" || len(e.Val) == 0 {
				sum.Skipped++
				continue
			}
			seen[key{e.Stage, e.Hash}] = len(e.Val)
		}
		if sc.Err() != nil {
			sum.Skipped++
		}
		for k, n := range seen {
			if sum.Entries == nil {
				sum.Entries = map[Stage]int{}
				sum.Bytes = map[Stage]int64{}
			}
			sum.Entries[k.stage]++
			sum.Bytes[k.stage] += int64(n)
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, statsFile)); err == nil {
		_ = json.Unmarshal(data, &sum.Stats)
	}
	return sum, nil
}

// Text renders the summary for terminal output.
func (s DirSummary) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== evaluation cache (%s) ==\n", s.Dir)
	total := 0
	for _, n := range s.Entries {
		total += n
	}
	if total == 0 {
		sb.WriteString("no persistent entries\n")
	}
	for _, stage := range sortedStages(statsToStages(s.Entries)) {
		fmt.Fprintf(&sb, "%-10s %6d entries %10d bytes\n", stage, s.Entries[stage], s.Bytes[stage])
	}
	if s.Skipped > 0 {
		fmt.Fprintf(&sb, "skipped %d malformed line(s)\n", s.Skipped)
	}
	if len(s.Stats.Stages) > 0 {
		sb.WriteString("cumulative across runs:\n")
		for _, stage := range sortedStages(s.Stats.Stages) {
			st := s.Stats.Stages[stage]
			hitRate := 0.0
			if st.Hits+st.Misses > 0 {
				hitRate = 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
			}
			fmt.Fprintf(&sb, "%-10s %6d hits %6d misses (%.0f%% hit rate) %6d stores %d evictions\n",
				stage, st.Hits, st.Misses, hitRate, st.Stores, st.Evictions)
		}
	}
	return sb.String()
}

// statsToStages adapts an entry-count map to sortedStages' shape.
func statsToStages(m map[Stage]int) map[Stage]StageStats {
	out := make(map[Stage]StageStats, len(m))
	for k := range m {
		out[k] = StageStats{}
	}
	return out
}
