package evalcache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hetero/heterogen/internal/crashpoint"
)

// The persistent tier is a set of append-only JSONL files plus a small
// statistics sidecar:
//
//	<dir>/entries.jsonl       shard 0 (and the whole store when unsharded)
//	<dir>/entries-<i>.jsonl   shard i > 0 of a sharded cache
//	<dir>/stats.json          cumulative Stats merged on every Close
//
// Append-only JSONL makes the store crash-tolerant by construction: a
// process killed mid-write leaves at most one truncated final line,
// which the loader skips (and counts) like any other corrupt line.
// Duplicate lines are legal — the last write for a key wins, matching
// overwrite semantics of the in-memory tier. On open, *every* entries
// file present is loaded regardless of the current shard count; which
// file an entry lands in is a write-side detail, never part of its
// address, so a directory written with one Shards value serves a cache
// opened with any other.

const (
	entriesFile = "entries.jsonl"
	statsFile   = "stats.json"
)

// shardFile names shard i's append file. Shard 0 keeps the historical
// single-file name, so unsharded directories stay byte-compatible.
func shardFile(i int) string {
	if i == 0 {
		return entriesFile
	}
	return fmt.Sprintf("entries-%d.jsonl", i)
}

// entriesFiles lists the entry files present in dir, entries.jsonl
// first then entries-<i>.jsonl in name order.
func entriesFiles(dir string) []string {
	var files []string
	if _, err := os.Stat(filepath.Join(dir, entriesFile)); err == nil {
		files = append(files, entriesFile)
	}
	extra, _ := filepath.Glob(filepath.Join(dir, "entries-*.jsonl"))
	sort.Strings(extra)
	for _, p := range extra {
		files = append(files, filepath.Base(p))
	}
	return files
}

// maxEntryLine bounds one serialized entry (fuzz campaigns with event
// streams are the largest, hundreds of KB). Longer lines are treated
// as corrupt on load.
const maxEntryLine = 64 << 20

// diskEntry is the JSONL line format.
type diskEntry struct {
	Stage Stage           `json:"stage"`
	Hash  string          `json:"hash"`
	Val   json.RawMessage `json:"val"`
}

// diskStore is one shard's open append handle.
type diskStore struct {
	f *os.File
	w *bufio.Writer
}

// scanEntries folds every well-formed entry of one file into dst and
// returns the malformed-line count. Malformed lines are skipped, never
// fatal: the cache must survive a corrupted or truncated store (e.g. a
// run killed mid-write).
func scanEntries(path string, dst map[key]json.RawMessage) int64 {
	var skipped int64
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), maxEntryLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e diskEntry
		if json.Unmarshal(line, &e) != nil || e.Stage == "" || e.Hash == "" || len(e.Val) == 0 {
			skipped++
			continue
		}
		dst[key{e.Stage, e.Hash}] = append(json.RawMessage(nil), e.Val...)
	}
	if sc.Err() != nil {
		// An over-long or unreadable tail: everything before it loaded
		// fine; what remains is unrecoverable.
		skipped++
	}
	return skipped
}

// loadDir creates dir if needed and loads every well-formed entry from
// every entries file present (last write wins within a file; across
// files the load order is fixed, and duplicate keys across files only
// arise from shard-count changes, where either copy is valid).
func loadDir(dir string) (map[key]json.RawMessage, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("evalcache: create dir: %w", err)
	}
	loaded := map[key]json.RawMessage{}
	var skipped int64
	for _, name := range entriesFiles(dir) {
		skipped += scanEntries(filepath.Join(dir, name), loaded)
	}
	return loaded, skipped, nil
}

// openAppend opens shard i's entries file for append.
func openAppend(dir string, i int) (*diskStore, error) {
	f, err := os.OpenFile(filepath.Join(dir, shardFile(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("evalcache: open store: %w", err)
	}
	return &diskStore{f: f, w: bufio.NewWriter(f)}, nil
}

// append writes one entry line.
func (s *diskStore) append(k key, raw json.RawMessage) error {
	line, err := json.Marshal(diskEntry{Stage: k.stage, Hash: k.hash, Val: raw})
	if err != nil {
		return err
	}
	if crashpoint.Hit("evalcache.append") {
		// Kill-matrix hook: stage the torn final line a SIGKILL
		// mid-append leaves (half a record, flushed to the kernel, no
		// newline) and die without cleanup. The loader must skip it.
		s.w.Write(line[:len(line)/2])
		s.w.Flush()
		crashpoint.Kill()
	}
	if _, err := s.w.Write(line); err != nil {
		return err
	}
	return s.w.WriteByte('\n')
}

// discard abandons the append handle without flushing buffered writes —
// used when a shard degrades to in-memory operation after a write
// failure.
func (s *diskStore) discard() {
	_ = s.f.Close()
}

// close flushes buffered entries and closes the file.
func (s *diskStore) close() error {
	flushErr := s.w.Flush()
	if err := s.f.Close(); flushErr == nil {
		flushErr = err
	}
	return flushErr
}

// mergeSidecar merges one cache's lifetime statistics into the
// cumulative stats.json sidecar. A corrupt or missing sidecar restarts
// the count rather than failing.
func mergeSidecar(dir string, stats Stats) error {
	path := filepath.Join(dir, statsFile)
	var prior Stats
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &prior)
	}
	merged := prior.merge(stats)
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DirSummary describes a persistent cache directory: the live entry
// population (after last-write-wins dedup, across every shard file)
// and the cumulative statistics of every run that wrote to it.
type DirSummary struct {
	Dir string `json:"dir"`
	// Files counts the entries files present (1 for an unsharded
	// store, one per shard otherwise).
	Files int `json:"files,omitempty"`
	// Entries / Bytes count live entries and their serialized size per
	// stage.
	Entries map[Stage]int   `json:"entries,omitempty"`
	Bytes   map[Stage]int64 `json:"bytes,omitempty"`
	// Skipped counts malformed entry lines encountered in this scan.
	Skipped int64 `json:"skipped,omitempty"`
	// Stats is the cumulative activity from stats.json (zero when no
	// run has closed the cache yet).
	Stats Stats `json:"stats"`
}

// SummarizeDir scans a persistent cache directory for reporting
// (hgtrace's cache section). Missing files yield an empty summary, not
// an error; the error is reserved for an unreadable directory.
func SummarizeDir(dir string) (DirSummary, error) {
	sum := DirSummary{Dir: dir}
	if _, err := os.Stat(dir); err != nil {
		return sum, fmt.Errorf("evalcache: %w", err)
	}
	seen := map[key]json.RawMessage{}
	files := entriesFiles(dir)
	sum.Files = len(files)
	for _, name := range files {
		sum.Skipped += scanEntries(filepath.Join(dir, name), seen)
	}
	for k, raw := range seen {
		if sum.Entries == nil {
			sum.Entries = map[Stage]int{}
			sum.Bytes = map[Stage]int64{}
		}
		sum.Entries[k.stage]++
		sum.Bytes[k.stage] += int64(len(raw))
	}
	if data, err := os.ReadFile(filepath.Join(dir, statsFile)); err == nil {
		_ = json.Unmarshal(data, &sum.Stats)
	}
	return sum, nil
}

// Text renders the summary for terminal output.
func (s DirSummary) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== evaluation cache (%s) ==\n", s.Dir)
	total := 0
	for _, n := range s.Entries {
		total += n
	}
	if total == 0 {
		sb.WriteString("no persistent entries\n")
	}
	for _, stage := range sortedStages(statsToStages(s.Entries)) {
		fmt.Fprintf(&sb, "%-10s %6d entries %10d bytes\n", stage, s.Entries[stage], s.Bytes[stage])
	}
	if s.Files > 1 {
		fmt.Fprintf(&sb, "sharded across %d entry files\n", s.Files)
	}
	if s.Skipped > 0 {
		fmt.Fprintf(&sb, "skipped %d malformed line(s)\n", s.Skipped)
	}
	if len(s.Stats.Stages) > 0 {
		sb.WriteString("cumulative across runs:\n")
		for _, stage := range sortedStages(s.Stats.Stages) {
			st := s.Stats.Stages[stage]
			hitRate := 0.0
			if st.Hits+st.Misses > 0 {
				hitRate = 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
			}
			fmt.Fprintf(&sb, "%-10s %6d hits %6d misses (%.0f%% hit rate) %6d stores %d evictions\n",
				stage, st.Hits, st.Misses, hitRate, st.Stores, st.Evictions)
		}
	}
	return sb.String()
}

// statsToStages adapts an entry-count map to sortedStages' shape.
func statsToStages(m map[Stage]int) map[Stage]StageStats {
	out := make(map[Stage]StageStats, len(m))
	for k := range m {
		out[k] = StageStats{}
	}
	return out
}
