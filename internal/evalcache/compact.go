package evalcache

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"

	"github.com/hetero/heterogen/internal/crashpoint"
)

// On-open compaction of the persistent tier.
//
// The append-only store accumulates garbage: overwritten entries (last
// write wins, but every write stays on disk), leftovers from
// shard-count changes, and skipped corrupt lines. Compaction rewrites
// the store to exactly the live entry set, routed under the current
// shard count, in deterministic (sorted-key) order.
//
// Crash safety is by construction, not by locking:
//
//  1. Each shard's new image builds as <file>.tmp — a name neither
//     entriesFiles' stat (entries.jsonl) nor its glob
//     (entries-*.jsonl) ever matches, so a half-written image is
//     invisible to every loader.
//  2. Every tmp is fsynced before any rename: once a rename lands, the
//     bytes behind it are on disk.
//  3. Renames are atomic per file. A kill between renames leaves a mix
//     of compacted and uncompacted shard files — every live entry is
//     present in one or the other (possibly both; entries are
//     content-addressed, so either copy is valid and last-write-wins
//     dedup is a no-op for true duplicates).
//  4. Files made stale by a shard-count shrink are deleted only after
//     every rename; a kill before that point merely leaves duplicates.
//
// The crashpoint.Here calls are the kill-matrix hooks: arming
// "evalcache.compact:N" SIGKILLs the process at the Nth step boundary,
// and the recovery test asserts no live entry is lost at any N.

// storeBytes totals the current entries files' sizes.
func storeBytes(dir string) int64 {
	var total int64
	for _, name := range entriesFiles(dir) {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// compactionDue decides whether the store has enough garbage to be
// worth rewriting; it also returns the current store size so the
// caller can report the reduction.
func compactionDue(dir string, live map[key]json.RawMessage, minBytes int64, garbage float64) (bool, int64) {
	total := storeBytes(dir)
	if total < minBytes {
		return false, total
	}
	var liveBytes int64
	for k, raw := range live {
		if b, err := json.Marshal(diskEntry{Stage: k.stage, Hash: k.hash, Val: raw}); err == nil {
			liveBytes += int64(len(b)) + 1 // trailing newline
		}
	}
	return float64(total-liveBytes) >= garbage*float64(total), total
}

// removeStaleTmps sweeps half-built shard images a crashed compaction
// left behind. They were never renamed into place, so removal can
// never lose data.
func removeStaleTmps(dir string) {
	tmps, _ := filepath.Glob(filepath.Join(dir, "entries*.jsonl.tmp"))
	for _, p := range tmps {
		os.Remove(p)
	}
}

// compactDir rewrites the store to exactly the live entries under
// nshards shard files. On error the store is left in a loadable state
// (any renamed shards are complete; the rest are the old files).
func compactDir(dir string, live map[key]json.RawMessage, nshards int) error {
	// Deterministic output: same live set → byte-identical files.
	keys := make([]key, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stage != keys[j].stage {
			return keys[i].stage < keys[j].stage
		}
		return keys[i].hash < keys[j].hash
	})

	// Step 1: build every shard's new image as an invisible tmp.
	for i := 0; i < nshards; i++ {
		path := filepath.Join(dir, shardFile(i))
		f, err := os.Create(path + ".tmp")
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, k := range keys {
			if shardIndex(k.hash, nshards) != i {
				continue
			}
			line, err := json.Marshal(diskEntry{Stage: k.stage, Hash: k.hash, Val: live[k]})
			if err != nil {
				continue
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				f.Close()
				return err
			}
		}
		err = w.Flush()
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		crashpoint.Here("evalcache.compact")
	}

	// Step 2: atomically swap each shard file in.
	for i := 0; i < nshards; i++ {
		path := filepath.Join(dir, shardFile(i))
		if err := os.Rename(path+".tmp", path); err != nil {
			return err
		}
		crashpoint.Here("evalcache.compact")
	}

	// Step 3: drop files outside the current shard layout (a shrink
	// from a higher shard count). Only now — before this point they
	// still back live entries the new images may not yet have covered.
	current := map[string]bool{}
	for i := 0; i < nshards; i++ {
		current[shardFile(i)] = true
	}
	for _, name := range entriesFiles(dir) {
		if !current[name] {
			os.Remove(filepath.Join(dir, name))
			crashpoint.Here("evalcache.compact")
		}
	}
	return nil
}
