// Campaign memoization. A fuzzing campaign is a pure function of the
// program, the kernel, and the campaign-shaping options (seed, budget,
// plateau, host seeding, mutation typing, step bound) — Workers and
// observers never change what it computes — so a finished campaign can
// be stored whole in the evaluation cache and replayed on the next run
// over the same subject.
//
// Two representation problems make this more than a json.Marshal:
//
//   - Arg.Elem is a ctypes.Type interface value, which serializes but
//     cannot deserialize. The cached form drops it and the decoder
//     restores it from a freshly recomputed Spec: every argument's
//     element type equals its parameter's by construction (seeds and
//     mutations all clone from Spec.Params).
//
//   - Trace parity: a traced cold run emits one event per committed
//     execution, and warm runs must produce byte-identical traces. So
//     a traced run records its emitted events into the entry, and a
//     replay re-emits them verbatim. An entry stored by an untraced
//     run carries no events and cannot serve a traced run — that
//     lookup counts as a miss and the recomputed campaign overwrites
//     the entry.

package fuzz

import (
	"fmt"
	"math"
	"strings"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/obs"
)

// CorpusFingerprint canonically hashes a test suite — the corpus
// component of difftest cache keys. Floats hash by bit pattern, so
// -0.0, denormals, and every other value that matters to kernel
// behaviour is distinguished exactly.
func CorpusFingerprint(tests []TestCase) string {
	var sb strings.Builder
	for _, tc := range tests {
		sb.WriteString("case")
		for _, a := range tc.Args {
			elem := ""
			if a.Elem != nil {
				elem = a.Elem.C("")
			}
			fmt.Fprintf(&sb, "|%t,%t,%d,%t,%s:", a.IsFloat, a.Scalar, a.Width, a.Unsigned, elem)
			for _, v := range a.Ints {
				fmt.Fprintf(&sb, "%d,", v)
			}
			sb.WriteByte(';')
			for _, v := range a.Floats {
				fmt.Fprintf(&sb, "%x,", math.Float64bits(v))
			}
		}
		sb.WriteByte('\n')
	}
	return evalcache.Fingerprint("corpus", sb.String())
}

// cachedArg is Arg without the non-deserializable element type.
type cachedArg struct {
	IsFloat  bool      `json:"f,omitempty"`
	Scalar   bool      `json:"s,omitempty"`
	Ints     []int64   `json:"i,omitempty"`
	Floats   []float64 `json:"d,omitempty"`
	Width    int       `json:"w,omitempty"`
	Unsigned bool      `json:"u,omitempty"`
}

// cachedCase is one serialized test vector.
type cachedCase struct {
	Args []cachedArg `json:"args"`
}

// cachedCampaign is the disk form of a finished campaign. Spec is not
// stored: it is deterministic in (program, kernel) and recomputed on
// restore, which is also what supplies the element types.
type cachedCampaign struct {
	Tests           []cachedCase `json:"tests"`
	Coverage        float64      `json:"coverage"`
	CoveredOutcomes int          `json:"covered"`
	TotalOutcomes   int          `json:"total"`
	Execs           int          `json:"execs"`
	VirtualSeconds  float64      `json:"virtual_s"`
	SeededFromHost  bool         `json:"seeded,omitempty"`
	Plateaued       bool         `json:"plateaued,omitempty"`
	// HasEvents distinguishes "stored untraced" from "traced campaign
	// that emitted zero events" (impossible in practice, but the flag
	// keeps the contract explicit).
	HasEvents bool        `json:"has_events,omitempty"`
	Events    []obs.Event `json:"events,omitempty"`
}

// encodeCampaign converts a finished campaign (and the events a traced
// run emitted, when rec is non-nil) to its cached form.
func encodeCampaign(camp Campaign, rec *eventRecorder) cachedCampaign {
	cc := cachedCampaign{
		Tests:           make([]cachedCase, len(camp.Tests)),
		Coverage:        camp.Coverage,
		CoveredOutcomes: camp.CoveredOutcomes,
		TotalOutcomes:   camp.TotalOutcomes,
		Execs:           camp.Execs,
		VirtualSeconds:  camp.VirtualSeconds,
		SeededFromHost:  camp.SeededFromHost,
		Plateaued:       camp.Plateaued,
	}
	for i, tc := range camp.Tests {
		args := make([]cachedArg, len(tc.Args))
		for j, a := range tc.Args {
			args[j] = cachedArg{
				IsFloat: a.IsFloat, Scalar: a.Scalar,
				Ints: a.Ints, Floats: a.Floats,
				Width: a.Width, Unsigned: a.Unsigned,
			}
		}
		cc.Tests[i] = cachedCase{Args: args}
	}
	if rec != nil {
		cc.HasEvents = true
		cc.Events = rec.events
	}
	return cc
}

// decode rebuilds the campaign against a freshly computed spec. A
// shape mismatch (an entry from a different program colliding, or a
// mangled store) reports !ok and the caller recomputes.
func (cc cachedCampaign) decode(sp Spec) (Campaign, bool) {
	camp := Campaign{
		Spec:            sp,
		Coverage:        cc.Coverage,
		CoveredOutcomes: cc.CoveredOutcomes,
		TotalOutcomes:   cc.TotalOutcomes,
		Execs:           cc.Execs,
		VirtualSeconds:  cc.VirtualSeconds,
		SeededFromHost:  cc.SeededFromHost,
		Plateaued:       cc.Plateaued,
	}
	for _, ct := range cc.Tests {
		if len(ct.Args) != len(sp.Params) {
			return Campaign{}, false
		}
		tc := TestCase{Args: make([]Arg, len(ct.Args))}
		for i, ca := range ct.Args {
			tc.Args[i] = Arg{
				IsFloat: ca.IsFloat, Scalar: ca.Scalar,
				Ints: ca.Ints, Floats: ca.Floats,
				Width: ca.Width, Unsigned: ca.Unsigned,
				Elem: sp.Params[i].Elem,
			}
		}
		camp.Tests = append(camp.Tests, tc)
	}
	return camp, true
}

// eventRecorder tees emitted events into a buffer for the cache entry.
// Fuzz events are emitted only on the campaign goroutine, so no lock.
type eventRecorder struct {
	inner  obs.Observer
	events []obs.Event
}

func (r *eventRecorder) Emit(e obs.Event) {
	r.events = append(r.events, e)
	r.inner.Emit(e)
}
