package fuzz

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/obs"
)

// Options configures a fuzzing campaign.
type Options struct {
	// Seed fixes the mutation RNG for reproducibility.
	Seed int64
	// MaxExecs bounds total kernel executions (default 4000).
	MaxExecs int
	// Plateau stops the campaign after this many consecutive executions
	// without new coverage (default 600) — the analog of the paper's
	// "30 minutes since the last new path" stopping rule.
	Plateau int
	// HostMain, when set, is executed first to capture kernel-entry seeds
	// (Algorithm 1's getKernelSeed). When empty, seeding is random.
	HostMain string
	// TypedMutation disables the HLS-type-validity filter when false
	// (used by the ablation benchmarks).
	TypedMutation bool
	// MaxStepsPerExec bounds one kernel execution.
	MaxStepsPerExec int64
	// Workers bounds how many kernel executions of one mutation batch
	// run concurrently, each on its own interpreter. Coverage merges by
	// set union and retention decisions are committed in mutation
	// order, so the campaign — tests, coverage, execution count — is
	// bit-identical for any value. 0 or 1 executes sequentially.
	Workers int
	// Obs receives one structured event per committed execution plus a
	// campaign summary (and a plateau warning when the campaign stalls
	// before MaxExecs). Events are emitted in mutation commit order, so
	// a trace is byte-identical for any Workers value. Nil disables
	// observation.
	Obs obs.Observer
	// Cache, when non-nil, memoizes whole campaigns on a fingerprint of
	// (printed program, kernel, Seed, MaxExecs, Plateau, HostMain,
	// TypedMutation, MaxStepsPerExec) — everything that shapes the
	// outcome; Workers and observers are excluded by the determinism
	// contract. A hit returns the stored campaign, replaying its
	// recorded event stream when tracing, so results and traces are
	// byte-identical to a cold run. An entry stored by an untraced run
	// carries no events and cannot serve a traced run: that lookup
	// misses and the recomputed campaign overwrites the entry. Nil
	// disables memoization.
	Cache *evalcache.Cache
	// Guard contains kernel-execution failures: an input whose execution
	// panics outside the interpreter's own fault model (or overruns the
	// guard deadline) is dropped — it contributes no coverage and is
	// never retained — instead of killing the campaign. A nil guard
	// still contains panics; failure decisions are keyed on the rendered
	// test case, so they are identical for any Workers value. When the
	// guard injects faults, the campaign cache is bypassed entirely and
	// campaigns that contained failures are never memoized.
	Guard *guard.Guard
}

// DefaultOptions returns the standard campaign configuration.
func DefaultOptions() Options {
	return Options{
		Seed:            1,
		MaxExecs:        4000,
		Plateau:         600,
		TypedMutation:   true,
		MaxStepsPerExec: 2_000_000,
	}
}

// Campaign is the result of a fuzzing run.
type Campaign struct {
	Spec  Spec
	Tests []TestCase
	// Coverage is covered branch outcomes / total outcomes over the
	// functions reachable from the kernel, in [0,1].
	Coverage float64
	// CoveredOutcomes / TotalOutcomes detail the fraction.
	CoveredOutcomes int
	TotalOutcomes   int
	Execs           int
	// VirtualSeconds models the wall-clock the paper's Table 4 reports
	// (each execution has a small fixed virtual cost).
	VirtualSeconds float64
	// SeededFromHost reports whether a host run supplied the seed.
	SeededFromHost bool
	// Plateaued reports the campaign stopped on the plateau rule (no new
	// coverage for Options.Plateau consecutive executions) before
	// reaching its MaxExecs budget — the §4 analog of "30 minutes since
	// the last new path". Callers should surface this: the generated
	// suite may under-cover the kernel.
	Plateaued bool
	// StageFailures counts executions contained by Options.Guard (they
	// consumed budget but contributed nothing). A campaign with
	// StageFailures > 0 is never memoized.
	StageFailures int
}

// execVirtualSeconds is the simulated cost of one fuzz execution,
// calibrated so campaigns land in the tens-of-minutes range of Table 4.
const execVirtualSeconds = 0.9

// Run executes a fuzzing campaign against the kernel of u.
func Run(u *cast.Unit, kernel string, opts Options) (Campaign, error) {
	return RunContext(context.Background(), u, kernel, opts)
}

// RunContext is Run with cooperative cancellation. The context is
// checked at execution commit points: when it is cancelled the
// campaign stops where it is and returns the corpus gathered so far
// with a nil error (a partial campaign is still a usable test suite —
// callers that must distinguish inspect ctx.Err themselves). Cancelled
// campaigns are never cached.
func RunContext(ctx context.Context, u *cast.Unit, kernel string, opts Options) (Campaign, error) {
	if opts.MaxExecs == 0 {
		opts.MaxExecs = 4000
	}
	if opts.Plateau == 0 {
		opts.Plateau = 600
	}
	if opts.MaxStepsPerExec == 0 {
		opts.MaxStepsPerExec = 2_000_000
	}
	sp, err := SpecOf(u, kernel)
	if err != nil {
		return Campaign{}, err
	}

	o := obs.OrNop(opts.Obs)
	tracing := obs.Enabled(opts.Obs)

	// Fault injection bypasses the campaign cache in both directions: a
	// memoized clean campaign would skip the very faults the injector
	// plants, and an injected campaign must never be memoized as the
	// verdict for this fingerprint.
	if opts.Guard.Injecting() {
		opts.Cache = nil
	}

	// Cache lookup: a memoized campaign short-circuits the whole run.
	// The acceptance closure rejects (counting a miss) entries that
	// cannot serve this call — no event stream while tracing, or a
	// shape that no longer decodes against the recomputed spec.
	var cacheKey string
	if opts.Cache != nil {
		cacheKey = evalcache.FuzzKey(cast.Print(u), kernel, opts.Seed,
			opts.MaxExecs, opts.Plateau, opts.HostMain, opts.TypedMutation, opts.MaxStepsPerExec)
		var cc cachedCampaign
		var restored Campaign
		hit := opts.Cache.GetIf(evalcache.StageFuzz, cacheKey, &cc, func() bool {
			if tracing && !cc.HasEvents {
				return false
			}
			camp, ok := cc.decode(sp)
			if ok {
				restored = camp
			}
			return ok
		})
		if hit {
			if tracing {
				for _, e := range cc.Events {
					o.Emit(e)
				}
			}
			return restored, nil
		}
	}
	// Traced cold runs record their event stream into the cache entry
	// so a warm replay can reproduce the trace byte-for-byte.
	var rec *eventRecorder
	if opts.Cache != nil && tracing {
		rec = &eventRecorder{inner: o}
		o = rec
	}

	rng := rand.New(rand.NewSource(opts.Seed))

	camp := Campaign{Spec: sp}
	sites := reachableSites(u, kernel)
	camp.TotalOutcomes = 2 * len(sites)
	inSites := map[int]bool{}
	for _, s := range sites {
		inSites[s] = true
	}

	in, err := interp.New(u, interp.Options{
		Coverage: true,
		MaxSteps: opts.MaxStepsPerExec,
	})
	if err != nil {
		return Campaign{}, err
	}

	covered := map[int]bool{} // outcome index -> seen
	newCoverage := func() bool {
		found := false
		for idx, hit := range in.CoverageBits {
			if hit && !covered[idx] && inSites[idx/2] {
				covered[idx] = true
				found = true
			}
		}
		return found
	}

	// Observability: one event per committed execution, emitted on this
	// goroutine in mutation order — the pooled path below commits (and
	// therefore emits) in exactly the same sequence, so traces are
	// byte-identical for any Workers value.
	sinceGain := 0
	var queue []TestCase
	emitExec := func(gained, crashed, invalid bool, failure string) {
		if !tracing {
			return
		}
		o.Emit(obs.Event{Type: obs.EvFuzzExec, Virtual: camp.VirtualSeconds, Fuzz: &obs.FuzzEvent{
			Exec: camp.Execs, Gained: gained, Crashed: crashed, Invalid: invalid,
			Covered: len(covered), TotalOutcomes: camp.TotalOutcomes,
			BitmapBits: len(in.CoverageBits),
			Corpus:     len(queue), Tests: len(camp.Tests), SinceGain: sinceGain,
			Failure: failure,
		}})
	}

	execute := func(tc TestCase) (gained, crashed bool, failure *guard.StageFailure, err error) {
		// Fresh globals per test, preserving cumulative coverage bits.
		saved := in.CoverageBits
		if err := in.Reset(); err != nil {
			return false, false, nil, err
		}
		copy(in.CoverageBits, saved)
		camp.Execs++
		camp.VirtualSeconds += execVirtualSeconds
		var runErr error
		_, doErr := guard.Do(opts.Guard,
			guard.Invocation{Stage: guard.StageInterp, Key: "exec|" + tc.String(), Unit: u},
			func(cu *cast.Unit) (struct{}, error) {
				if cu != u {
					// Quarantine replay on a reduced clone: run it on a
					// private interpreter so campaign state stays intact.
					rin, rerr := interp.New(cu, interp.Options{Coverage: true, MaxSteps: opts.MaxStepsPerExec})
					if rerr != nil {
						return struct{}{}, rerr
					}
					_, _ = rin.CallKernel(kernel, tc.Values())
					return struct{}{}, nil
				}
				_, runErr = in.CallKernel(kernel, tc.Values())
				return struct{}{}, nil
			})
		if sf := guard.AsFailure(doErr); sf != nil {
			// The execution was contained mid-flight: its partial coverage
			// must not leak (the pooled path merges no hits on failure).
			// Reset reallocates CoverageBits, so the pre-exec snapshot in
			// saved is intact — but a deadline-abandoned goroutine may
			// still be writing through the old interpreter, so replace it
			// entirely when the fault actually ran.
			if sf.Injected {
				in.CoverageBits = saved
			} else {
				nin, nerr := interp.New(u, interp.Options{Coverage: true, MaxSteps: opts.MaxStepsPerExec})
				if nerr != nil {
					return false, false, nil, nerr
				}
				copy(nin.CoverageBits, saved)
				in = nin
			}
			return false, false, sf, nil
		}
		if runErr != nil {
			// Crashing inputs still contribute coverage but are not
			// retained: the repair oracle needs clean reference outputs.
			return newCoverage(), true, nil, nil
		}
		return newCoverage(), false, nil, nil
	}

	// Seed: host capture when available, else type-valid random.
	if opts.HostMain != "" {
		if seed, ok := captureHostSeed(u, kernel, opts.HostMain, sp); ok {
			queue = append(queue, seed)
			camp.SeededFromHost = true
		}
	}
	if len(queue) == 0 {
		queue = append(queue, randomCase(sp, rng))
	}

	// Initial corpus entries always count as tests (even when their
	// execution crashed or was contained — the corpus membership rule
	// predates the guard and stays put).
	for _, tc := range queue {
		if ctx.Err() != nil {
			break
		}
		gained, crashed, failure, err := execute(tc)
		if err != nil {
			return camp, err
		}
		camp.Tests = append(camp.Tests, tc)
		if failure != nil {
			camp.StageFailures++
			emitExec(false, false, false, failure.Label())
			continue
		}
		emitExec(gained, crashed, false, "")
	}

	var pool *execPool
	if opts.Workers > 1 {
		pool, err = newExecPool(u, kernel, opts.Workers, opts.MaxStepsPerExec, opts.Guard)
		if err != nil {
			return camp, err
		}
		defer pool.close()
	}

	for camp.Execs < opts.MaxExecs && sinceGain < opts.Plateau && ctx.Err() == nil {
		// Pop a corpus entry (round-robin over the retained queue).
		parent := queue[camp.Execs%len(queue)]
		children := mutate(parent, sp, rng, opts.TypedMutation)

		if pool != nil {
			// Speculatively execute the whole batch concurrently, then
			// commit retention/plateau decisions in mutation order —
			// identical to the sequential loop below (executions past a
			// MaxExecs stop are wasted CPU, never wrong state).
			schedule := make([]bool, len(children))
			for i, child := range children {
				schedule[i] = TypeValid(sp, child)
			}
			results := pool.runBatch(children, schedule)
			for i, child := range children {
				if camp.Execs >= opts.MaxExecs || ctx.Err() != nil {
					break
				}
				if !schedule[i] {
					if opts.TypedMutation {
						continue
					}
					camp.Execs++
					camp.VirtualSeconds += execVirtualSeconds
					sinceGain++
					emitExec(false, false, true, "")
					continue
				}
				camp.Execs++
				camp.VirtualSeconds += execVirtualSeconds
				if results[i].failed != "" {
					// Contained execution: no coverage merged, nothing
					// retained — identical to the sequential path.
					camp.StageFailures++
					sinceGain++
					emitExec(false, false, false, results[i].failed)
					continue
				}
				gained := false
				for _, idx := range results[i].hits {
					if !covered[idx] && inSites[idx/2] {
						covered[idx] = true
						gained = true
					}
				}
				if results[i].crashed {
					// Crashing inputs contribute coverage but are not
					// retained (the repair oracle needs clean outputs).
					sinceGain++
					emitExec(gained, true, false, "")
					continue
				}
				if gained {
					queue = append(queue, child)
					camp.Tests = append(camp.Tests, child)
					sinceGain = 0
				} else {
					sinceGain++
				}
				emitExec(gained, false, false, "")
			}
			continue
		}

		for _, child := range children {
			if camp.Execs >= opts.MaxExecs || ctx.Err() != nil {
				break
			}
			if !TypeValid(sp, child) {
				if opts.TypedMutation {
					// The inserted type checker filters these for free.
					continue
				}
				// Untyped ablation: the invalid input is executed, dies
				// at the kernel entry, and contributes nothing.
				camp.Execs++
				camp.VirtualSeconds += execVirtualSeconds
				sinceGain++
				emitExec(false, false, true, "")
				continue
			}
			gained, crashed, failure, err := execute(child)
			if err != nil {
				return camp, err
			}
			if failure != nil {
				camp.StageFailures++
				sinceGain++
				emitExec(false, false, false, failure.Label())
				continue
			}
			if crashed {
				sinceGain++
				emitExec(gained, true, false, "")
				continue
			}
			if gained {
				queue = append(queue, child)
				camp.Tests = append(camp.Tests, child)
				sinceGain = 0
			} else {
				sinceGain++
			}
			emitExec(gained, false, false, "")
		}
	}

	camp.CoveredOutcomes = len(covered)
	if camp.TotalOutcomes > 0 {
		camp.Coverage = float64(len(covered)) / float64(camp.TotalOutcomes)
	} else {
		camp.Coverage = 1
	}
	if sinceGain >= opts.Plateau && camp.Execs < opts.MaxExecs {
		camp.Plateaued = true
		if tracing {
			o.Emit(obs.Event{Type: obs.EvWarning, Virtual: camp.VirtualSeconds,
				Warn: fmt.Sprintf("fuzz campaign plateaued: no new coverage for %d consecutive executions, stopped at %d/%d execs (%.0f%% branch coverage)",
					opts.Plateau, camp.Execs, opts.MaxExecs, 100*camp.Coverage)})
		}
	}
	if tracing {
		o.Emit(obs.Event{Type: obs.EvFuzzDone, Virtual: camp.VirtualSeconds, Fuzz: &obs.FuzzEvent{
			Exec: camp.Execs, Covered: camp.CoveredOutcomes, TotalOutcomes: camp.TotalOutcomes,
			BitmapBits: len(in.CoverageBits),
			Corpus:     len(queue), Tests: len(camp.Tests), SinceGain: sinceGain,
			Coverage: camp.Coverage, Plateaued: camp.Plateaued,
			StageFailures: camp.StageFailures,
		}})
	}
	// A cancelled campaign is partial, and one that contained failures
	// reflects this run's environment, not the fingerprint's verdict:
	// neither is memoized.
	if opts.Cache != nil && ctx.Err() == nil && camp.StageFailures == 0 {
		opts.Cache.Put(evalcache.StageFuzz, cacheKey, encodeCampaign(camp, rec))
	}
	return camp, nil
}

// Replay measures the coverage of a fixed test suite (used to score
// pre-existing tests for Table 4).
func Replay(u *cast.Unit, kernel string, tests []TestCase) (float64, error) {
	return ReplayParallel(u, kernel, tests, 1)
}

// ReplayParallel is Replay with up to workers concurrent executions,
// each on its own interpreter. Coverage is a set union over per-test
// hit sets, so the measured fraction is identical for any worker count.
func ReplayParallel(u *cast.Unit, kernel string, tests []TestCase, workers int) (float64, error) {
	sites := reachableSites(u, kernel)
	if len(sites) == 0 {
		return 1, nil
	}
	inSites := map[int]bool{}
	for _, s := range sites {
		inSites[s] = true
	}
	results, err := collectHits(u, kernel, tests, workers)
	if err != nil {
		return 0, err
	}
	covered := map[int]bool{}
	for _, r := range results {
		for _, idx := range r.hits {
			if inSites[idx/2] {
				covered[idx] = true
			}
		}
	}
	return float64(len(covered)) / float64(2*len(sites)), nil
}

// captureHostSeed runs the host entry point and snapshots the first
// kernel-call arguments.
func captureHostSeed(u *cast.Unit, kernel, hostMain string, sp Spec) (TestCase, bool) {
	var captured []interp.Value
	in, err := interp.New(u, interp.Options{
		CaptureName: kernel,
		CaptureCall: func(args []interp.Value) {
			if captured == nil {
				captured = args
			}
		},
	})
	if err != nil {
		return TestCase{}, false
	}
	if _, err := in.CallKernel(hostMain, nil); err != nil && captured == nil {
		return TestCase{}, false
	}
	if captured == nil {
		return TestCase{}, false
	}
	tc := TestCase{Args: make([]Arg, len(sp.Params))}
	for i := range sp.Params {
		proto := sp.Params[i].Clone()
		if i < len(captured) {
			fillFromValue(&proto, captured[i])
		}
		tc.Args[i] = proto
	}
	if !TypeValid(sp, tc) {
		return TestCase{}, false
	}
	return tc, true
}

// fillFromValue copies a captured runtime value into an Arg payload.
func fillFromValue(a *Arg, v interp.Value) {
	if a.Scalar {
		if a.IsFloat {
			a.Floats[0] = v.AsFloat()
		} else {
			a.Ints[0] = interp.WrapInt(v.AsInt(), a.Width, a.Unsigned)
		}
		return
	}
	if v.Kind != interp.VPtr || v.Obj == nil {
		return
	}
	n := len(v.Obj.Elems)
	for i := 0; i < a.Len() && i < n; i++ {
		if a.IsFloat {
			a.Floats[i] = v.Obj.Elems[i].AsFloat()
		} else {
			a.Ints[i] = interp.WrapInt(v.Obj.Elems[i].AsInt(), a.Width, a.Unsigned)
		}
	}
}

// reachableSites returns the branch-site IDs in functions reachable from
// the kernel.
func reachableSites(u *cast.Unit, kernel string) []int {
	reach := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if reach[name] {
			return
		}
		fn := u.Func(name)
		if fn == nil {
			return
		}
		reach[name] = true
		cast.Inspect(fn, func(n cast.Node) bool {
			if c, ok := n.(*cast.Call); ok {
				if id, ok := c.Fun.(*cast.Ident); ok {
					visit(id.Name)
				}
				if mem, ok := c.Fun.(*cast.Member); ok {
					// Struct methods: visit all same-named methods.
					_ = mem
					for _, d := range u.Decls {
						if sd, ok := d.(*cast.StructDecl); ok {
							for _, m := range sd.Methods {
								if m.Name == mem.Field {
									visitMethod(u, m, reach, visit)
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	visit(kernel)

	var sites []int
	collect := func(fn *cast.FuncDecl) {
		cast.Inspect(fn, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.If:
				sites = append(sites, x.BranchID)
			case *cast.For:
				sites = append(sites, x.BranchID)
			case *cast.While:
				sites = append(sites, x.BranchID)
			case *cast.Cond:
				sites = append(sites, x.BranchID)
			case *cast.Switch:
				for i := range x.Cases {
					sites = append(sites, x.BranchID+i)
				}
			}
			return true
		})
	}
	for _, d := range u.Decls {
		switch x := d.(type) {
		case *cast.FuncDecl:
			if reach[x.Name] {
				collect(x)
			}
		case *cast.StructDecl:
			for _, m := range x.Methods {
				if reach[x.Type.Tag+"::"+m.Name] {
					collect(m)
				}
			}
		}
	}
	return sites
}

func visitMethod(u *cast.Unit, m *cast.FuncDecl, reach map[string]bool, visit func(string)) {
	key := methodKeyOf(u, m)
	if reach[key] {
		return
	}
	reach[key] = true
	cast.Inspect(m, func(n cast.Node) bool {
		if c, ok := n.(*cast.Call); ok {
			if id, ok := c.Fun.(*cast.Ident); ok {
				visit(id.Name)
			}
		}
		return true
	})
}

func methodKeyOf(u *cast.Unit, m *cast.FuncDecl) string {
	for _, d := range u.Decls {
		if sd, ok := d.(*cast.StructDecl); ok {
			for _, mm := range sd.Methods {
				if mm == m {
					return sd.Type.Tag + "::" + m.Name
				}
			}
		}
	}
	return m.Name
}

// VirtualMinutes renders the campaign's simulated duration.
func (c Campaign) VirtualMinutes() float64 { return c.VirtualSeconds / 60 }

// Summary is a one-line report.
func (c Campaign) Summary() string {
	return fmt.Sprintf("%d tests, %.0f min, %.0f%% branch coverage",
		len(c.Tests), c.VirtualMinutes(), 100*c.Coverage)
}
