package fuzz

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/obs"
)

func guardedOptions(rate float64, seed int64) Options {
	return Options{
		Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true,
		Guard: guard.New(guard.Options{
			Injector: chaos.New(chaos.Options{
				Seed:   seed,
				Rate:   rate,
				Stages: []guard.Stage{guard.StageInterp},
			}),
		}),
	}
}

func tracedCampaign(t *testing.T, opts Options) (Campaign, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	opts.Obs = tw
	camp, err := Run(cparser.MustParse(branchy), "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return camp, buf.Bytes()
}

// TestCampaignSurvivesInterpFaults runs a campaign with probabilistic
// faults on the execution stage: contained failures count, gain
// nothing, and — because the schedule is keyed on test-case content —
// the campaign is bit-identical for any Workers value.
func TestCampaignSurvivesInterpFaults(t *testing.T) {
	opts := guardedOptions(0.3, 11)
	seq, seqTrace := tracedCampaign(t, opts)
	if seq.StageFailures == 0 {
		t.Fatal("chaos at rate 0.3 contained no failures — the test exercises nothing")
	}
	for _, workers := range []int{4, 8} {
		opts := guardedOptions(0.3, 11)
		opts.Workers = workers
		par, parTrace := tracedCampaign(t, opts)
		if !bytes.Equal(seqTrace, parTrace) {
			sl, pl := bytes.Split(seqTrace, []byte("\n")), bytes.Split(parTrace, []byte("\n"))
			for i := 0; i < len(sl) && i < len(pl); i++ {
				if !bytes.Equal(sl[i], pl[i]) {
					t.Fatalf("workers=%d: traces diverge at line %d:\n  seq: %s\n  par: %s",
						workers, i+1, sl[i], pl[i])
				}
			}
			t.Fatalf("workers=%d: traces differ in length", workers)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: campaigns diverge:\n  seq: %+v\n  par: %+v", workers, seq, par)
		}
	}
}

// TestCampaignAllExecsCrashingStillReturns pins the worst case: every
// execution panics, yet the campaign terminates with a structured
// result (the seed corpus, zero coverage) instead of a process panic.
func TestCampaignAllExecsCrashingStillReturns(t *testing.T) {
	opts := Options{
		Seed: 1, MaxExecs: 60, Plateau: 30, TypedMutation: true,
		Guard: guard.New(guard.Options{Injector: chaos.Always(guard.StageInterp, guard.ClassPanic)}),
	}
	camp, err := Run(cparser.MustParse(branchy), "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	if camp.StageFailures == 0 {
		t.Fatal("no stage failures recorded")
	}
	if camp.Coverage != 0 {
		t.Errorf("coverage %v from executions that never ran", camp.Coverage)
	}
}
