// Package fuzz implements HeteroGen's coverage-guided test-input generator
// (the paper's Algorithm 1). It differs from a stock fuzzer in the two
// ways §4 identifies:
//
//   - it targets the kernel function rather than the whole application,
//     seeding from the intermediate program state captured at the kernel
//     entry of a host-program run (getKernelSeed); and
//   - its mutations are type-aware: every generated argument is valid for
//     the kernel's declared HLS data types, so inputs exercise kernel
//     logic instead of dying at the entry point.
//
// Feedback is branch coverage of the original C program, measured by the
// CPU interpreter over the functions reachable from the kernel.
package fuzz
