package fuzz

import (
	"testing"
	"testing/quick"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/ctypes"
)

const branchy = `
int kernel(int x, int y) {
    int r = 0;
    if (x > 100) { r += 1; } else { r -= 1; }
    if (y < -50) { r *= 2; }
    if (x == 7) { r += 1000; }
    for (int i = 0; i < y % 8; i++) { r += i; }
    return r;
}`

func TestSpecOfScalars(t *testing.T) {
	u := cparser.MustParse(branchy)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Params) != 2 {
		t.Fatalf("params %d", len(sp.Params))
	}
	for _, p := range sp.Params {
		if !p.Scalar || p.IsFloat || p.Width != 32 {
			t.Errorf("unexpected param proto %+v", p)
		}
	}
}

func TestSpecOfArraysAndOutputs(t *testing.T) {
	u := cparser.MustParse(`
void kernel(float in[16], float out[16]) {
    for (int i = 0; i < 16; i++) { out[i] = in[i] * 2; }
}`)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Params[0].Len() != 16 || !sp.Params[0].IsFloat {
		t.Errorf("in proto %+v", sp.Params[0])
	}
	if sp.OutParams[0] {
		t.Error("in should not be an output")
	}
	if !sp.OutParams[1] {
		t.Error("out should be detected as an output")
	}
}

func TestSpecOfMultiDim(t *testing.T) {
	u := cparser.MustParse(`
void kernel(int m[4][8]) {
    m[0][0] = 1;
}`)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Params[0].Len() != 32 {
		t.Errorf("flattened length %d, want 32", sp.Params[0].Len())
	}
}

func TestCampaignCoversBranches(t *testing.T) {
	u := cparser.MustParse(branchy)
	camp, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if camp.Coverage < 0.9 {
		t.Errorf("coverage %.2f, want >= 0.9 (%d/%d outcomes)",
			camp.Coverage, camp.CoveredOutcomes, camp.TotalOutcomes)
	}
	if len(camp.Tests) < 3 {
		t.Errorf("only %d retained tests", len(camp.Tests))
	}
	if camp.Execs == 0 || camp.VirtualSeconds == 0 {
		t.Error("campaign accounting missing")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	u := cparser.MustParse(branchy)
	a, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tests) != len(b.Tests) || a.Coverage != b.Coverage || a.Execs != b.Execs {
		t.Errorf("campaigns differ: %v vs %v", a.Summary(), b.Summary())
	}
}

func TestHostSeedCapture(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int x) {
    if (x == 4242) { return 1; }
    return 0;
}
int host() {
    int staged = 4242;
    return kernel(staged);
}`)
	opts := DefaultOptions()
	opts.HostMain = "host"
	camp, err := Run(u, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !camp.SeededFromHost {
		t.Fatal("host seed not captured")
	}
	if camp.Tests[0].Args[0].Ints[0] != 4242 {
		t.Errorf("seed value %d, want 4242", camp.Tests[0].Args[0].Ints[0])
	}
	// The magic constant branch is reachable only via the captured seed;
	// coverage must include it.
	if camp.Coverage < 1.0 {
		t.Errorf("coverage %.2f with host seed, want 1.0", camp.Coverage)
	}
}

func TestTypedMutationRespectsWidth(t *testing.T) {
	u := cparser.MustParse(`
int kernel(fpga_uint<7> x) {
    if (x > 100) { return 1; }
    return 0;
}`)
	camp, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range camp.Tests {
		v := tc.Args[0].Ints[0]
		if v < 0 || v > 127 {
			t.Errorf("type-invalid retained input %d for fpga_uint<7>", v)
		}
	}
}

func TestTypeValid(t *testing.T) {
	sp := Spec{Params: []Arg{{Scalar: true, Ints: []int64{0}, Width: 7, Unsigned: true}}}
	good := TestCase{Args: []Arg{{Scalar: true, Ints: []int64{90}, Width: 7, Unsigned: true}}}
	bad := TestCase{Args: []Arg{{Scalar: true, Ints: []int64{300}, Width: 7, Unsigned: true}}}
	if !TypeValid(sp, good) {
		t.Error("90 fits in 7 unsigned bits")
	}
	if TypeValid(sp, bad) {
		t.Error("300 does not fit in 7 unsigned bits")
	}
}

func TestReplayScoresFixedSuite(t *testing.T) {
	u := cparser.MustParse(branchy)
	sp, _ := SpecOf(u, "kernel")
	mk := func(x, y int64) TestCase {
		tc := TestCase{Args: []Arg{sp.Params[0].Clone(), sp.Params[1].Clone()}}
		tc.Args[0].Ints[0] = x
		tc.Args[1].Ints[0] = y
		return tc
	}
	// One bland test covers few outcomes.
	cov1, err := Replay(u, "kernel", []TestCase{mk(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	cov2, err := Replay(u, "kernel", []TestCase{mk(0, 0), mk(200, -100), mk(7, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if cov2 <= cov1 {
		t.Errorf("richer suite should cover more: %.2f vs %.2f", cov1, cov2)
	}
}

func TestCrashingInputsNotRetained(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int x) {
    int a[8];
    if (x > 0 && x < 100) { return a[x % 8]; }
    return 10 / x;
}`)
	camp, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// x == 0 crashes; retained tests must all replay cleanly.
	for _, tc := range camp.Tests {
		if tc.Args[0].Ints[0] == 0 {
			t.Error("crashing input retained in corpus")
		}
	}
}

// Property: clampInt always lands within the declared range.
func TestClampIntProperty(t *testing.T) {
	f := func(v int64, w uint8, unsigned bool) bool {
		width := int(w%30) + 2
		a := Arg{Width: width, Unsigned: unsigned}
		got := clampInt(v, a)
		if unsigned {
			return got >= 0 && got <= (1<<uint(width))-1
		}
		max := int64(1)<<uint(width-1) - 1
		return got >= -max-1 && got <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: materialized values round-trip the payload.
func TestArgValueRoundTrip(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			vals = []uint8{1}
		}
		a := Arg{Ints: make([]int64, len(vals)), Width: 8, Unsigned: true, Elem: ctypes.UChar}
		for i, v := range vals {
			a.Ints[i] = int64(v)
		}
		val := a.Value()
		if val.Kind != 2 { // VPtr
			return false
		}
		for i := range vals {
			if val.Obj.Elems[i].AsInt() != int64(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMutationPreservesShape(t *testing.T) {
	u := cparser.MustParse(`
void kernel(float in[8], float out[8]) {
    for (int i = 0; i < 8; i++) { out[i] = in[i]; }
}`)
	camp, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range camp.Tests {
		if len(tc.Args) != 2 || tc.Args[0].Len() != 8 || tc.Args[1].Len() != 8 {
			t.Fatalf("shape broken: %s", tc)
		}
	}
}
