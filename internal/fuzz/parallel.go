// Concurrent corpus evaluation for the fuzzer.
//
// Kernel executions over distinct test inputs are independent: each runs
// on its own interpreter against the same immutable program, and the only
// shared artifacts — coverage bits — merge by set union, which is
// order-insensitive. The campaign's *decisions* (which children are
// retained, when the plateau rule fires) stay on the calling goroutine
// and are committed in mutation order, so a campaign with Workers=N is
// bit-identical to the sequential one for the same Options.Seed: the
// same pattern the repair search's parallel engine uses (see
// internal/repair/parallel.go).
package fuzz

import (
	"sync"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/interp"
)

// execResult is one speculative kernel execution: the coverage bit
// indexes it hit and whether it crashed. failed carries the label of a
// contained stage failure ("interp/panic") — such a result has no hits
// and is never retained.
type execResult struct {
	hits    []int
	crashed bool
	failed  string
}

// execPool executes test cases on a bounded set of workers, each owning
// one interpreter over the campaign's program.
type execPool struct {
	jobs chan execJob
	wg   sync.WaitGroup
}

type execJob struct {
	tc  TestCase
	out *execResult
	wg  *sync.WaitGroup
}

// newExecPool starts workers interpreter-owning goroutines. The unit is
// shared read-only; every worker gets its own interpreter (and thus its
// own globals, coverage bits, and step budget).
func newExecPool(u *cast.Unit, kernel string, workers int, maxSteps int64, g *guard.Guard) (*execPool, error) {
	// Fail construction eagerly if the program cannot initialize, like
	// the sequential path's interp.New call.
	if _, err := interp.New(u, interp.Options{Coverage: true, MaxSteps: maxSteps}); err != nil {
		return nil, err
	}
	p := &execPool{jobs: make(chan execJob, workers)}
	for i := 0; i < workers; i++ {
		go p.worker(u, kernel, maxSteps, g)
	}
	return p, nil
}

func (p *execPool) worker(u *cast.Unit, kernel string, maxSteps int64, g *guard.Guard) {
	in, err := interp.New(u, interp.Options{Coverage: true, MaxSteps: maxSteps})
	for job := range p.jobs {
		if err == nil {
			res, discard := guardedRun(g, u, in, kernel, maxSteps, job.tc)
			*job.out = res
			if discard {
				// A contained execution may have left the private
				// interpreter dirty (or a deadline-abandoned goroutine
				// still writing to it): replace it before the next job.
				in, err = interp.New(u, interp.Options{Coverage: true, MaxSteps: maxSteps})
			}
		} else {
			job.out.crashed = true
		}
		job.wg.Done()
	}
}

// guardedRun is runOnce under the guard. discard reports that the
// worker's interpreter actually ran the contained execution and must be
// replaced (injected faults never run it).
func guardedRun(g *guard.Guard, u *cast.Unit, in *interp.Interp, kernel string, maxSteps int64, tc TestCase) (execResult, bool) {
	res, err := guard.Do(g,
		guard.Invocation{Stage: guard.StageInterp, Key: "exec|" + tc.String(), Unit: u},
		func(cu *cast.Unit) (execResult, error) {
			if cu != u {
				// Quarantine replay on a reduced clone: use a private
				// interpreter so the worker's stays untouched.
				rin, rerr := interp.New(cu, interp.Options{Coverage: true, MaxSteps: maxSteps})
				if rerr != nil {
					return execResult{}, rerr
				}
				return runOnce(rin, kernel, tc), nil
			}
			return runOnce(in, kernel, tc), nil
		})
	if sf := guard.AsFailure(err); sf != nil {
		return execResult{failed: sf.Label()}, !sf.Injected
	}
	return res, false
}

func (p *execPool) close() { close(p.jobs) }

// runOnce executes one test on a private interpreter and extracts its
// hit set.
func runOnce(in *interp.Interp, kernel string, tc TestCase) execResult {
	if err := in.Reset(); err != nil {
		return execResult{crashed: true}
	}
	_, runErr := in.CallKernel(kernel, tc.Values())
	res := execResult{crashed: runErr != nil}
	for idx, hit := range in.CoverageBits {
		if hit {
			res.hits = append(res.hits, idx)
		}
	}
	return res
}

// runBatch executes the scheduled children concurrently, in any order;
// results land at the child's index. Children with schedule[i] == false
// (type-invalid inputs the campaign never executes) are skipped.
func (p *execPool) runBatch(children []TestCase, schedule []bool) []execResult {
	results := make([]execResult, len(children))
	var wg sync.WaitGroup
	for i := range children {
		if !schedule[i] {
			continue
		}
		wg.Add(1)
		p.jobs <- execJob{tc: children[i], out: &results[i], wg: &wg}
	}
	wg.Wait()
	return results
}

// collectHits runs every test on the pool (or, with workers <= 1,
// sequentially on one interpreter) and returns each test's hit set in
// input order. Used by Replay and Minimize, whose aggregations are
// order-insensitive unions over these sets.
func collectHits(u *cast.Unit, kernel string, tests []TestCase, workers int) ([]execResult, error) {
	if workers <= 1 {
		in, err := interp.New(u, interp.Options{Coverage: true})
		if err != nil {
			return nil, err
		}
		out := make([]execResult, len(tests))
		for i, tc := range tests {
			out[i] = runOnce(in, kernel, tc)
		}
		return out, nil
	}
	pool, err := newExecPool(u, kernel, workers, 0, nil)
	if err != nil {
		return nil, err
	}
	defer pool.close()
	schedule := make([]bool, len(tests))
	for i := range schedule {
		schedule[i] = true
	}
	return pool.runBatch(tests, schedule), nil
}
