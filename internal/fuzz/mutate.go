package fuzz

import (
	"math"
	"math/rand"
)

// mutate derives a batch of children from a parent test case, AFL-style:
// a mix of deterministic boundary probes and randomized havoc, always
// respecting the declared types when materialized by the caller's
// type-validity filter.
func mutate(parent TestCase, sp Spec, rng *rand.Rand, typed bool) []TestCase {
	clamp := clampInt
	if !typed {
		// Untyped mutation (the ablation): values roam the full int64
		// range; type-invalid inputs then die at the kernel entry.
		clamp = func(v int64, a Arg) int64 { return v }
	}
	var out []TestCase
	emit := func(tc TestCase) { out = append(out, tc) }

	for ai := range parent.Args {
		if sp.OutParams[ai] {
			continue // never mutate pure outputs
		}
		a := parent.Args[ai]
		if a.IsFloat {
			for _, f := range floatProbes(a, rng) {
				child := parent.Clone()
				child.Args[ai] = f
				emit(child)
			}
		} else {
			for _, f := range intProbes(a, rng, clamp) {
				child := parent.Clone()
				child.Args[ai] = f
				emit(child)
			}
			// Dictionary probes: program constants defeat equality guards.
			if len(sp.Dict) > 0 {
				for k := 0; k < 3; k++ {
					child := parent.Clone()
					d := sp.Dict[rng.Intn(len(sp.Dict))]
					ca := &child.Args[ai]
					ca.Ints[rng.Intn(len(ca.Ints))] = clamp(d, *ca)
					emit(child)
				}
			}
		}
	}

	// Havoc: several multi-site random mutations.
	for h := 0; h < 4; h++ {
		child := parent.Clone()
		hits := 1 + rng.Intn(4)
		for i := 0; i < hits; i++ {
			ai := rng.Intn(len(child.Args))
			if sp.OutParams[ai] {
				continue
			}
			havocOne(&child.Args[ai], rng, clamp)
		}
		emit(child)
	}
	return out
}

// intProbes produces deterministic-ish integer mutations: boundary values
// of the declared width, bit flips, and small arithmetic.
func intProbes(a Arg, rng *rand.Rand, clamp func(int64, Arg) int64) []Arg {
	var out []Arg
	bounds := intBounds(a)
	if a.Scalar {
		for _, b := range bounds {
			c := a.Clone()
			c.Ints[0] = b
			out = append(out, c)
		}
		for _, d := range []int64{1, -1, 7, -7, 64} {
			c := a.Clone()
			c.Ints[0] = clamp(c.Ints[0]+d, a)
			out = append(out, c)
		}
		c := a.Clone()
		c.Ints[0] = clamp(c.Ints[0]^(1<<uint(rng.Intn(maxBit(a)))), a)
		out = append(out, c)
		return out
	}
	// Array probes: boundary fill, single-element boundary, random fill,
	// sorted and reversed ramps (valuable for sorting kernels).
	for _, b := range bounds[:2] {
		c := a.Clone()
		for i := range c.Ints {
			c.Ints[i] = b
		}
		out = append(out, c)
	}
	c := a.Clone()
	c.Ints[rng.Intn(len(c.Ints))] = bounds[len(bounds)-1]
	out = append(out, c)

	c = a.Clone()
	for i := range c.Ints {
		c.Ints[i] = clamp(rng.Int63n(1<<uint(maxBit(a)))-boundOffset(a), a)
	}
	out = append(out, c)

	c = a.Clone()
	for i := range c.Ints {
		c.Ints[i] = clamp(int64(i), a)
	}
	out = append(out, c)

	c = a.Clone()
	for i := range c.Ints {
		c.Ints[i] = clamp(int64(len(c.Ints)-i), a)
	}
	out = append(out, c)
	return out
}

func floatProbes(a Arg, rng *rand.Rand) []Arg {
	specials := []float64{0, 1, -1, 0.5, 1e6, -1e6, 3.14159}
	var out []Arg
	if a.Scalar {
		for _, s := range specials {
			c := a.Clone()
			c.Floats[0] = s
			out = append(out, c)
		}
		c := a.Clone()
		c.Floats[0] = c.Floats[0]*rng.Float64()*4 - 2
		out = append(out, c)
		return out
	}
	for _, s := range specials[:3] {
		c := a.Clone()
		for i := range c.Floats {
			c.Floats[i] = s
		}
		out = append(out, c)
	}
	c := a.Clone()
	for i := range c.Floats {
		c.Floats[i] = rng.NormFloat64() * 100
	}
	out = append(out, c)

	c = a.Clone()
	for i := range c.Floats {
		c.Floats[i] = float64(i) * 0.25
	}
	out = append(out, c)

	c = a.Clone()
	for i := range c.Floats {
		c.Floats[i] = math.Sin(float64(i))
	}
	out = append(out, c)
	return out
}

// havocOne applies one random mutation in place.
func havocOne(a *Arg, rng *rand.Rand, clamp func(int64, Arg) int64) {
	if a.IsFloat {
		i := rng.Intn(len(a.Floats))
		switch rng.Intn(4) {
		case 0:
			a.Floats[i] = -a.Floats[i]
		case 1:
			a.Floats[i] *= 1 + rng.Float64()
		case 2:
			a.Floats[i] = rng.NormFloat64() * 1000
		case 3:
			a.Floats[i] = 0
		}
		return
	}
	i := rng.Intn(len(a.Ints))
	switch rng.Intn(5) {
	case 0:
		a.Ints[i] = clamp(a.Ints[i]+int64(rng.Intn(17)-8), *a)
	case 1:
		a.Ints[i] = clamp(a.Ints[i]^(1<<uint(rng.Intn(maxBit(*a)))), *a)
	case 2:
		a.Ints[i] = clamp(-a.Ints[i], *a)
	case 3:
		a.Ints[i] = 0
	case 4:
		bounds := intBounds(*a)
		a.Ints[i] = bounds[rng.Intn(len(bounds))]
	}
}

// intBounds returns the declared type's interesting boundary values.
func intBounds(a Arg) []int64 {
	w := a.Width
	if w <= 0 || w > 63 {
		w = 63
	}
	if a.Unsigned {
		max := int64(1)<<uint(w) - 1
		if w >= 63 {
			max = math.MaxInt64
		}
		return []int64{0, 1, max, max / 2}
	}
	max := int64(1)<<uint(w-1) - 1
	min := -max - 1
	return []int64{0, 1, max, min, -1}
}

// clampInt wraps a mutated value into the declared type's range so typed
// mutation always yields valid inputs.
func clampInt(v int64, a Arg) int64 {
	w := a.Width
	if w <= 0 || w >= 64 {
		return v
	}
	if a.Unsigned {
		m := int64(1)<<uint(w) - 1
		if v < 0 {
			v = -v
		}
		return v & m
	}
	max := int64(1)<<uint(w-1) - 1
	min := -max - 1
	if v > max {
		return max
	}
	if v < min {
		return min
	}
	return v
}

func maxBit(a Arg) int {
	w := a.Width
	if w <= 1 {
		return 1
	}
	if w > 62 {
		return 62
	}
	return w - 1
}

func boundOffset(a Arg) int64 {
	if a.Unsigned {
		return 0
	}
	w := a.Width
	if w <= 1 || w > 62 {
		return 0
	}
	return 1 << uint(w-2)
}

// randomCase builds a type-valid random seed when no host capture exists.
func randomCase(sp Spec, rng *rand.Rand) TestCase {
	tc := TestCase{Args: make([]Arg, len(sp.Params))}
	for i, p := range sp.Params {
		a := p.Clone()
		if a.IsFloat {
			for j := range a.Floats {
				a.Floats[j] = rng.NormFloat64() * 10
			}
		} else {
			for j := range a.Ints {
				a.Ints[j] = clampInt(rng.Int63n(256), a)
			}
		}
		tc.Args[i] = a
	}
	return tc
}
