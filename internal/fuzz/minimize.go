package fuzz

import (
	"github.com/hetero/heterogen/internal/cast"
)

// Minimize reduces a test suite to a greedy set cover of its branch
// outcomes (afl-cmin's job): every covered outcome keeps at least one
// witness, so downstream differential testing loses no behaviour class
// while paying for far fewer executions. Tests that fail to execute are
// dropped. Order: tests are considered in their original order, so
// earlier (seed) tests are preferred witnesses.
func Minimize(u *cast.Unit, kernel string, tests []TestCase) ([]TestCase, error) {
	return MinimizeParallel(u, kernel, tests, 1)
}

// MinimizeParallel is Minimize with up to workers concurrent witness
// executions. The greedy cover runs over witnesses in input order
// either way, so the minimized suite is identical for any worker count.
func MinimizeParallel(u *cast.Unit, kernel string, tests []TestCase, workers int) ([]TestCase, error) {
	if len(tests) <= 1 {
		return tests, nil
	}
	results, err := collectHits(u, kernel, tests, workers)
	if err != nil {
		return nil, err
	}
	type witness struct {
		tc   TestCase
		bits []int
	}
	var witnesses []witness
	for i, tc := range tests {
		if results[i].crashed {
			continue
		}
		witnesses = append(witnesses, witness{tc: tc, bits: results[i].hits})
	}
	covered := map[int]bool{}
	var out []TestCase
	// Greedy: repeatedly take the test adding the most new outcomes.
	remaining := witnesses
	for {
		bestIdx, bestGain := -1, 0
		for i, w := range remaining {
			gain := 0
			for _, b := range w.bits {
				if !covered[b] {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		w := remaining[bestIdx]
		out = append(out, w.tc)
		for _, b := range w.bits {
			covered[b] = true
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	if len(out) == 0 {
		// Branchless kernels have no outcomes to cover; keep one clean
		// witness so differential testing still observes behaviour.
		if len(witnesses) > 0 {
			out = []TestCase{witnesses[0].tc}
		} else if len(tests) > 0 {
			out = tests[:1]
		}
	}
	return out, nil
}
