package fuzz

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/interp"
)

// Minimize reduces a test suite to a greedy set cover of its branch
// outcomes (afl-cmin's job): every covered outcome keeps at least one
// witness, so downstream differential testing loses no behaviour class
// while paying for far fewer executions. Tests that fail to execute are
// dropped. Order: tests are considered in their original order, so
// earlier (seed) tests are preferred witnesses.
func Minimize(u *cast.Unit, kernel string, tests []TestCase) ([]TestCase, error) {
	if len(tests) <= 1 {
		return tests, nil
	}
	in, err := interp.New(u, interp.Options{Coverage: true})
	if err != nil {
		return nil, err
	}
	type witness struct {
		tc   TestCase
		bits []int
	}
	var witnesses []witness
	for _, tc := range tests {
		if err := in.Reset(); err != nil {
			return nil, err
		}
		if _, err := in.CallKernel(kernel, tc.Values()); err != nil {
			continue
		}
		var bits []int
		for idx, hit := range in.CoverageBits {
			if hit {
				bits = append(bits, idx)
			}
		}
		witnesses = append(witnesses, witness{tc: tc, bits: bits})
	}
	covered := map[int]bool{}
	var out []TestCase
	// Greedy: repeatedly take the test adding the most new outcomes.
	remaining := witnesses
	for {
		bestIdx, bestGain := -1, 0
		for i, w := range remaining {
			gain := 0
			for _, b := range w.bits {
				if !covered[b] {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		w := remaining[bestIdx]
		out = append(out, w.tc)
		for _, b := range w.bits {
			covered[b] = true
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	if len(out) == 0 {
		// Branchless kernels have no outcomes to cover; keep one clean
		// witness so differential testing still observes behaviour.
		if len(witnesses) > 0 {
			out = []TestCase{witnesses[0].tc}
		} else if len(tests) > 0 {
			out = tests[:1]
		}
	}
	return out, nil
}
