package fuzz

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/obs"
)

// tracedRun runs a campaign with a JSONL trace writer attached and
// returns the campaign plus the raw trace bytes.
func tracedRun(t *testing.T, u *cast.Unit, kernel string, opts Options) (Campaign, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	opts.Obs = tw
	camp, err := Run(u, kernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return camp, buf.Bytes()
}

// assertCampaignsIdentical fails unless the two campaigns are
// bit-identical: same retained tests in the same order, same coverage,
// same execution and accounting numbers.
func assertCampaignsIdentical(t *testing.T, seq, par Campaign) {
	t.Helper()
	if len(seq.Tests) != len(par.Tests) {
		t.Fatalf("retained tests differ: %d sequential vs %d parallel",
			len(seq.Tests), len(par.Tests))
	}
	for i := range seq.Tests {
		if !reflect.DeepEqual(seq.Tests[i], par.Tests[i]) {
			t.Errorf("test %d differs:\nseq: %s\npar: %s",
				i, seq.Tests[i], par.Tests[i])
		}
	}
	if seq.Coverage != par.Coverage ||
		seq.CoveredOutcomes != par.CoveredOutcomes ||
		seq.TotalOutcomes != par.TotalOutcomes {
		t.Errorf("coverage differs: seq %.4f (%d/%d) vs par %.4f (%d/%d)",
			seq.Coverage, seq.CoveredOutcomes, seq.TotalOutcomes,
			par.Coverage, par.CoveredOutcomes, par.TotalOutcomes)
	}
	if seq.Execs != par.Execs || seq.VirtualSeconds != par.VirtualSeconds {
		t.Errorf("accounting differs: seq execs=%d vt=%.2f vs par execs=%d vt=%.2f",
			seq.Execs, seq.VirtualSeconds, par.Execs, par.VirtualSeconds)
	}
	if seq.SeededFromHost != par.SeededFromHost {
		t.Errorf("host seeding differs: %v vs %v", seq.SeededFromHost, par.SeededFromHost)
	}
}

// TestParallelCampaignDeterminism: a campaign with Workers=4 must be
// bit-identical to the sequential one for the same seed, on both a
// branchy kernel and one with crashing inputs (crash handling is the
// subtle commit-order case: crashed children contribute coverage but
// are never retained).
func TestParallelCampaignDeterminism(t *testing.T) {
	kernels := map[string]string{
		"branchy": branchy,
		"crashy": `
int kernel(int x) {
    int a[8];
    if (x > 0 && x < 100) { return a[x % 8]; }
    return 10 / x;
}`,
	}
	for name, src := range kernels {
		t.Run(name, func(t *testing.T) {
			u := cparser.MustParse(src)
			opts := DefaultOptions()
			opts.MaxExecs = 600
			opts.Plateau = 200
			seq, seqTrace := tracedRun(t, u, "kernel", opts)
			opts.Workers = 4
			par, parTrace := tracedRun(t, cparser.MustParse(src), "kernel", opts)
			assertCampaignsIdentical(t, seq, par)
			if !bytes.Equal(seqTrace, parTrace) {
				t.Errorf("traces differ between Workers=1 and Workers=4 (%d vs %d bytes)",
					len(seqTrace), len(parTrace))
			}
			// One fuzz_exec event per execution.
			if n := bytes.Count(seqTrace, []byte(`"type":"fuzz_exec"`)); n != seq.Execs {
				t.Errorf("trace has %d fuzz_exec events, want %d", n, seq.Execs)
			}
		})
	}
}

// TestParallelCampaignDeterminismUntyped covers the ablation path
// (TypedMutation=false), where type-invalid children are executed
// rather than rejected for free — a different schedule shape.
func TestParallelCampaignDeterminismUntyped(t *testing.T) {
	src := `
int kernel(fpga_uint<7> x) {
    if (x > 100) { return 1; }
    if (x == 7) { return 2; }
    return 0;
}`
	opts := DefaultOptions()
	opts.MaxExecs = 400
	opts.Plateau = 150
	opts.TypedMutation = false
	seq, err := Run(cparser.MustParse(src), "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 3
	par, err := Run(cparser.MustParse(src), "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignsIdentical(t, seq, par)
}

// TestReplayParallelMatchesSequential: coverage is a set union over
// per-test hit sets, so the score must not depend on worker count.
func TestReplayParallelMatchesSequential(t *testing.T) {
	u := cparser.MustParse(branchy)
	opts := DefaultOptions()
	opts.MaxExecs = 600
	opts.Plateau = 200
	camp, err := Run(u, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Replay(u, "kernel", camp.Tests)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayParallel(u, "kernel", camp.Tests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("replay coverage differs: %.4f sequential vs %.4f parallel", seq, par)
	}
}

// TestMinimizeParallelMatchesSequential: the greedy cover consumes
// witnesses in input order either way, so the minimized suite must be
// identical for any worker count.
func TestMinimizeParallelMatchesSequential(t *testing.T) {
	u := cparser.MustParse(branchy)
	opts := DefaultOptions()
	opts.MaxExecs = 600
	opts.Plateau = 200
	camp, err := Run(u, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Minimize(u, "kernel", camp.Tests)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MinimizeParallel(u, "kernel", camp.Tests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("minimized suites differ: %d tests sequential vs %d parallel",
			len(seq), len(par))
	}
}

// TestCampaignPlateauFlag: a kernel whose coverage saturates instantly
// must set Campaign.Plateaued and emit exactly one warning event; a
// campaign that runs its full budget must not.
func TestCampaignPlateauFlag(t *testing.T) {
	src := `
int kernel(int x) {
    return x + 1;
}`
	opts := DefaultOptions()
	opts.MaxExecs = 200
	opts.Plateau = 40
	camp, trace := tracedRun(t, cparser.MustParse(src), "kernel", opts)
	if !camp.Plateaued {
		t.Fatalf("straight-line kernel should plateau: %d/%d execs", camp.Execs, opts.MaxExecs)
	}
	if camp.Execs >= opts.MaxExecs {
		t.Fatalf("plateaued campaign ran its whole budget: %d execs", camp.Execs)
	}
	if n := bytes.Count(trace, []byte(`"type":"warning"`)); n != 1 {
		t.Errorf("plateaued campaign emitted %d warning events, want 1", n)
	}

	// Exhausting the budget exactly is not a plateau.
	opts.MaxExecs = 30
	opts.Plateau = 500
	camp, trace = tracedRun(t, cparser.MustParse(src), "kernel", opts)
	if camp.Plateaued {
		t.Errorf("budget-bound campaign reported a plateau at %d execs", camp.Execs)
	}
	if n := bytes.Count(trace, []byte(`"type":"warning"`)); n != 0 {
		t.Errorf("budget-bound campaign emitted %d warning events, want 0", n)
	}
}
