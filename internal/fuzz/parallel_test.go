package fuzz

import (
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
)

// assertCampaignsIdentical fails unless the two campaigns are
// bit-identical: same retained tests in the same order, same coverage,
// same execution and accounting numbers.
func assertCampaignsIdentical(t *testing.T, seq, par Campaign) {
	t.Helper()
	if len(seq.Tests) != len(par.Tests) {
		t.Fatalf("retained tests differ: %d sequential vs %d parallel",
			len(seq.Tests), len(par.Tests))
	}
	for i := range seq.Tests {
		if !reflect.DeepEqual(seq.Tests[i], par.Tests[i]) {
			t.Errorf("test %d differs:\nseq: %s\npar: %s",
				i, seq.Tests[i], par.Tests[i])
		}
	}
	if seq.Coverage != par.Coverage ||
		seq.CoveredOutcomes != par.CoveredOutcomes ||
		seq.TotalOutcomes != par.TotalOutcomes {
		t.Errorf("coverage differs: seq %.4f (%d/%d) vs par %.4f (%d/%d)",
			seq.Coverage, seq.CoveredOutcomes, seq.TotalOutcomes,
			par.Coverage, par.CoveredOutcomes, par.TotalOutcomes)
	}
	if seq.Execs != par.Execs || seq.VirtualSeconds != par.VirtualSeconds {
		t.Errorf("accounting differs: seq execs=%d vt=%.2f vs par execs=%d vt=%.2f",
			seq.Execs, seq.VirtualSeconds, par.Execs, par.VirtualSeconds)
	}
	if seq.SeededFromHost != par.SeededFromHost {
		t.Errorf("host seeding differs: %v vs %v", seq.SeededFromHost, par.SeededFromHost)
	}
}

// TestParallelCampaignDeterminism: a campaign with Workers=4 must be
// bit-identical to the sequential one for the same seed, on both a
// branchy kernel and one with crashing inputs (crash handling is the
// subtle commit-order case: crashed children contribute coverage but
// are never retained).
func TestParallelCampaignDeterminism(t *testing.T) {
	kernels := map[string]string{
		"branchy": branchy,
		"crashy": `
int kernel(int x) {
    int a[8];
    if (x > 0 && x < 100) { return a[x % 8]; }
    return 10 / x;
}`,
	}
	for name, src := range kernels {
		t.Run(name, func(t *testing.T) {
			u := cparser.MustParse(src)
			opts := DefaultOptions()
			opts.MaxExecs = 600
			opts.Plateau = 200
			seq, err := Run(u, "kernel", opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Workers = 4
			par, err := Run(cparser.MustParse(src), "kernel", opts)
			if err != nil {
				t.Fatal(err)
			}
			assertCampaignsIdentical(t, seq, par)
		})
	}
}

// TestParallelCampaignDeterminismUntyped covers the ablation path
// (TypedMutation=false), where type-invalid children are executed
// rather than rejected for free — a different schedule shape.
func TestParallelCampaignDeterminismUntyped(t *testing.T) {
	src := `
int kernel(fpga_uint<7> x) {
    if (x > 100) { return 1; }
    if (x == 7) { return 2; }
    return 0;
}`
	opts := DefaultOptions()
	opts.MaxExecs = 400
	opts.Plateau = 150
	opts.TypedMutation = false
	seq, err := Run(cparser.MustParse(src), "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 3
	par, err := Run(cparser.MustParse(src), "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignsIdentical(t, seq, par)
}

// TestReplayParallelMatchesSequential: coverage is a set union over
// per-test hit sets, so the score must not depend on worker count.
func TestReplayParallelMatchesSequential(t *testing.T) {
	u := cparser.MustParse(branchy)
	opts := DefaultOptions()
	opts.MaxExecs = 600
	opts.Plateau = 200
	camp, err := Run(u, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Replay(u, "kernel", camp.Tests)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayParallel(u, "kernel", camp.Tests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("replay coverage differs: %.4f sequential vs %.4f parallel", seq, par)
	}
}

// TestMinimizeParallelMatchesSequential: the greedy cover consumes
// witnesses in input order either way, so the minimized suite must be
// identical for any worker count.
func TestMinimizeParallelMatchesSequential(t *testing.T) {
	u := cparser.MustParse(branchy)
	opts := DefaultOptions()
	opts.MaxExecs = 600
	opts.Plateau = 200
	camp, err := Run(u, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Minimize(u, "kernel", camp.Tests)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MinimizeParallel(u, "kernel", camp.Tests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("minimized suites differ: %d tests sequential vs %d parallel",
			len(seq), len(par))
	}
}
