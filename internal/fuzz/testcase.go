package fuzz

import (
	"fmt"
	"math"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/interp"
)

// Arg is one serialized kernel argument: a scalar or an array payload.
// Serialization (rather than holding interp.Values) lets each execution
// materialize fresh storage, so kernels that mutate their inputs cannot
// contaminate the corpus.
type Arg struct {
	IsFloat  bool
	Scalar   bool
	Ints     []int64
	Floats   []float64
	Width    int  // integer width for type-valid mutation
	Unsigned bool // integer signedness
	Elem     ctypes.Type
}

// Clone deep-copies the argument.
func (a Arg) Clone() Arg {
	out := a
	out.Ints = append([]int64(nil), a.Ints...)
	out.Floats = append([]float64(nil), a.Floats...)
	return out
}

// Value materializes the argument as a fresh interpreter value.
func (a Arg) Value() interp.Value {
	if a.Scalar {
		if a.IsFloat {
			return interp.FloatValue(a.Floats[0])
		}
		return interp.Value{Kind: interp.VInt, Int: a.Ints[0], Width: a.Width, Unsigned: a.Unsigned}
	}
	if a.IsFloat {
		vals := make([]interp.Value, len(a.Floats))
		for i, f := range a.Floats {
			vals[i] = interp.FloatValue(f)
		}
		return interp.NewArrayObject("arg", a.Elem, vals)
	}
	vals := make([]interp.Value, len(a.Ints))
	for i, v := range a.Ints {
		vals[i] = interp.Value{Kind: interp.VInt, Int: v, Width: a.Width, Unsigned: a.Unsigned}
	}
	return interp.NewArrayObject("arg", a.Elem, vals)
}

// Len returns the payload length (1 for scalars).
func (a Arg) Len() int {
	if a.IsFloat {
		return len(a.Floats)
	}
	return len(a.Ints)
}

// TestCase is one generated kernel input vector.
type TestCase struct {
	Args []Arg
}

// Clone deep-copies the test case.
func (tc TestCase) Clone() TestCase {
	out := TestCase{Args: make([]Arg, len(tc.Args))}
	for i, a := range tc.Args {
		out.Args[i] = a.Clone()
	}
	return out
}

// Values materializes all arguments.
func (tc TestCase) Values() []interp.Value {
	out := make([]interp.Value, len(tc.Args))
	for i, a := range tc.Args {
		out[i] = a.Value()
	}
	return out
}

// String summarizes the case for diagnostics.
func (tc TestCase) String() string {
	s := "["
	for i, a := range tc.Args {
		if i > 0 {
			s += ", "
		}
		if a.Scalar {
			if a.IsFloat {
				s += fmt.Sprintf("%g", a.Floats[0])
			} else {
				s += fmt.Sprintf("%d", a.Ints[0])
			}
		} else {
			s += fmt.Sprintf("%s[%d]", a.Elem.C(""), a.Len())
		}
	}
	return s + "]"
}

// ---------------------------------------------------------------------------
// Kernel signatures

// Spec describes the kernel's input shape, derived from its declaration.
type Spec struct {
	Kernel string
	Params []Arg // prototypes with zeroed payloads
	// OutParams marks parameters that are outputs (written before read);
	// they are excluded from mutation but materialized for each run.
	OutParams []bool
	// Dict is a dictionary of integer constants harvested from the
	// program's comparisons; equality-guarded branches are unreachable by
	// blind mutation, so probes draw from here (AFL's dictionary idea).
	Dict []int64
}

// DefaultArrayLen sizes pointer parameters with no declared extent.
const DefaultArrayLen = 64

// SpecOf derives a Spec from the kernel's signature. Array extents come
// from the declaration; bare pointer parameters get DefaultArrayLen.
// Output parameters are detected by first-access analysis: a parameter
// whose first access in the body is a write is treated as an output.
func SpecOf(u *cast.Unit, kernel string) (Spec, error) {
	fn := u.Func(kernel)
	if fn == nil {
		return Spec{}, fmt.Errorf("fuzz: kernel %q not found", kernel)
	}
	sp := Spec{Kernel: kernel}
	for _, p := range fn.Params {
		proto, err := protoFor(p.Type)
		if err != nil {
			return Spec{}, fmt.Errorf("fuzz: parameter %q: %w", p.Name, err)
		}
		sp.Params = append(sp.Params, proto)
		sp.OutParams = append(sp.OutParams, isOutputParam(fn, p.Name))
	}
	sp.Dict = constDictionary(u)
	return sp, nil
}

// constDictionary collects integer literals that appear in the program,
// plus their off-by-one neighbours.
func constDictionary(u *cast.Unit) []int64 {
	seen := map[int64]bool{}
	var dict []int64
	add := func(v int64) {
		for _, x := range []int64{v, v - 1, v + 1} {
			if !seen[x] {
				seen[x] = true
				dict = append(dict, x)
			}
		}
	}
	cast.Inspect(u, func(n cast.Node) bool {
		if lit, ok := n.(*cast.IntLit); ok {
			add(lit.Value)
		}
		if len(dict) > 96 {
			return false
		}
		return true
	})
	return dict
}

func protoFor(t ctypes.Type) (Arg, error) {
	switch u := ctypes.Resolve(t).(type) {
	case ctypes.Int:
		return Arg{Scalar: true, Ints: []int64{0}, Width: u.Width, Unsigned: u.Unsigned}, nil
	case ctypes.FPGAInt:
		return Arg{Scalar: true, Ints: []int64{0}, Width: u.Width, Unsigned: u.Unsigned}, nil
	case ctypes.Bool:
		return Arg{Scalar: true, Ints: []int64{0}, Width: 1, Unsigned: true}, nil
	case ctypes.Float, ctypes.FPGAFloat:
		return Arg{Scalar: true, IsFloat: true, Floats: []float64{0}}, nil
	case ctypes.Array:
		n, elem := u.Len, ctypes.Resolve(u.Elem)
		if n < 0 {
			n = DefaultArrayLen
		}
		if inner, ok := elem.(ctypes.Array); ok {
			// Flatten multi-dimensional payloads.
			total := n
			for {
				if inner.Len > 0 {
					total *= inner.Len
				}
				e, ok := ctypes.Resolve(inner.Elem).(ctypes.Array)
				if !ok {
					elem = ctypes.Resolve(inner.Elem)
					break
				}
				inner = e
			}
			n = total
		}
		return arrayProto(n, elem)
	case ctypes.Pointer:
		return arrayProto(DefaultArrayLen, ctypes.Resolve(u.Elem))
	}
	return Arg{}, fmt.Errorf("unsupported kernel parameter type %s", t.C(""))
}

func arrayProto(n int, elem ctypes.Type) (Arg, error) {
	switch e := elem.(type) {
	case ctypes.Int:
		return Arg{Ints: make([]int64, n), Width: e.Width, Unsigned: e.Unsigned, Elem: elem}, nil
	case ctypes.FPGAInt:
		return Arg{Ints: make([]int64, n), Width: e.Width, Unsigned: e.Unsigned, Elem: elem}, nil
	case ctypes.Float, ctypes.FPGAFloat:
		return Arg{IsFloat: true, Floats: make([]float64, n), Elem: elem}, nil
	}
	return Arg{}, fmt.Errorf("unsupported array element type %s", elem.C(""))
}

// isOutputParam reports whether every leading access to name in fn's body
// is a write through an index expression (heuristic first-use analysis).
func isOutputParam(fn *cast.FuncDecl, name string) bool {
	writes, reads := 0, 0
	cast.Inspect(fn, func(n cast.Node) bool {
		if as, ok := n.(*cast.Assign); ok {
			if ix, ok := as.L.(*cast.Index); ok {
				if id, ok := ix.X.(*cast.Ident); ok && id.Name == name {
					writes++
					// Do not descend into the LHS (it would count as a read).
					cast.Inspect(as.R, func(m cast.Node) bool {
						if rid, ok := m.(*cast.Ident); ok && rid.Name == name {
							reads++
						}
						return true
					})
					return false
				}
			}
		}
		if id, ok := n.(*cast.Ident); ok && id.Name == name {
			reads++
		}
		return true
	})
	return writes > 0 && reads <= writes/4
}

// TypeValid reports whether the test case is type-valid for the spec —
// every integer payload fits its declared width. This is the entry-point
// check HeteroGen inserts into the fuzzing loop (§4).
func TypeValid(sp Spec, tc TestCase) bool {
	if len(tc.Args) != len(sp.Params) {
		return false
	}
	for i, a := range tc.Args {
		p := sp.Params[i]
		if a.Scalar != p.Scalar || a.IsFloat != p.IsFloat {
			return false
		}
		if !a.IsFloat {
			for _, v := range a.Ints {
				if interp.WrapInt(v, p.Width, p.Unsigned) != v {
					return false
				}
			}
		} else {
			for _, f := range a.Floats {
				if math.IsNaN(f) {
					return false
				}
			}
		}
	}
	return true
}
