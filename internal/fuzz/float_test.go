package fuzz

import (
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
)

func TestFloatKernelCampaign(t *testing.T) {
	u := cparser.MustParse(`
float kernel(float in[16], float out[16], float gain) {
    float acc = 0;
    for (int i = 0; i < 16; i++) {
        float v = in[i] * gain;
        if (v > 100.0) { v = 100.0; }
        if (v < 0.0 - 100.0) { v = 0.0 - 100.0; }
        out[i] = v;
        acc += v;
    }
    if (gain < 0.0) { return 0.0 - acc; }
    return acc;
}`)
	camp, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if camp.Coverage < 0.9 {
		t.Errorf("float kernel coverage %.2f (%d/%d)",
			camp.Coverage, camp.CoveredOutcomes, camp.TotalOutcomes)
	}
	// Float payload shapes preserved.
	for _, tc := range camp.Tests {
		if !tc.Args[0].IsFloat || tc.Args[0].Len() != 16 {
			t.Fatalf("input arg shape broken: %s", tc)
		}
		if !tc.Args[2].Scalar || !tc.Args[2].IsFloat {
			t.Fatalf("gain arg shape broken: %s", tc)
		}
	}
}

func TestOutParamFloatDetection(t *testing.T) {
	u := cparser.MustParse(`
void kernel(float in[8], float out[8]) {
    for (int i = 0; i < 8; i++) { out[i] = in[i] * 2; }
}`)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if sp.OutParams[0] || !sp.OutParams[1] {
		t.Errorf("out-param detection: %v", sp.OutParams)
	}
}

func TestInOutParamNotTreatedAsOutput(t *testing.T) {
	// A sort mutates its input in place: reads dominate, so it must stay
	// mutable for the fuzzer.
	u := cparser.MustParse(`
void kernel(int a[16]) {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j + 1 < 16; j++) {
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
}`)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if sp.OutParams[0] {
		t.Error("in-place array wrongly classified as pure output")
	}
}

func TestCampaignStopsOnPlateau(t *testing.T) {
	// A branchless kernel saturates immediately; the plateau rule must
	// stop the campaign well before MaxExecs.
	u := cparser.MustParse(`int kernel(int x) { return x * 3; }`)
	opts := DefaultOptions()
	opts.MaxExecs = 100000
	opts.Plateau = 50
	camp, err := Run(u, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Execs >= opts.MaxExecs {
		t.Errorf("plateau did not stop the campaign: %d execs", camp.Execs)
	}
}

func TestMinimizeKeepsCoverage(t *testing.T) {
	u := cparser.MustParse(branchy)
	camp, err := Run(u, "kernel", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	min, err := Minimize(u, "kernel", camp.Tests)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > len(camp.Tests) {
		t.Fatalf("minimized suite grew: %d > %d", len(min), len(camp.Tests))
	}
	covFull, err := Replay(u, "kernel", camp.Tests)
	if err != nil {
		t.Fatal(err)
	}
	covMin, err := Replay(u, "kernel", min)
	if err != nil {
		t.Fatal(err)
	}
	if covMin < covFull {
		t.Errorf("minimization lost coverage: %.2f -> %.2f", covFull, covMin)
	}
}

func TestMinimizeDropsRedundantTests(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int x) {
    if (x > 0) { return 1; }
    return 0;
}`)
	sp, _ := SpecOf(u, "kernel")
	mk := func(v int64) TestCase {
		tc := TestCase{Args: []Arg{sp.Params[0].Clone()}}
		tc.Args[0].Ints[0] = v
		return tc
	}
	// 20 duplicates of two behaviour classes.
	var suite []TestCase
	for i := int64(0); i < 10; i++ {
		suite = append(suite, mk(i+1), mk(-i-1))
	}
	min, err := Minimize(u, "kernel", suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > 3 {
		t.Errorf("two behaviour classes should need <=3 witnesses, kept %d", len(min))
	}
}

func TestMinimizeSkipsCrashingTests(t *testing.T) {
	u := cparser.MustParse(`int kernel(int x) { return 10 / x; }`)
	sp, _ := SpecOf(u, "kernel")
	mk := func(v int64) TestCase {
		tc := TestCase{Args: []Arg{sp.Params[0].Clone()}}
		tc.Args[0].Ints[0] = v
		return tc
	}
	min, err := Minimize(u, "kernel", []TestCase{mk(0), mk(5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range min {
		if tc.Args[0].Ints[0] == 0 {
			t.Error("crashing test retained")
		}
	}
}
