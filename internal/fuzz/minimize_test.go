package fuzz

import (
	"fmt"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
)

const minimizeKernel = `
int kernel(int x, int y) {
	int acc = 0;
	if (x > 10) { acc = acc + 1; } else { acc = acc - 1; }
	if (y > 10) { acc = acc + 2; } else { acc = acc - 2; }
	while (acc > 0) { acc = acc - 3; }
	return acc;
}`

func minimizeSuite(t *testing.T) []TestCase {
	t.Helper()
	u := cparser.MustParse(minimizeKernel)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	var suite []TestCase
	for _, xy := range [][2]int64{
		{0, 0}, {20, 0}, {0, 20}, {20, 20}, {11, 11}, {-5, -5},
		{0, 0}, {20, 0}, {0, 20}, {20, 20}, // duplicates
	} {
		tc := TestCase{Args: []Arg{sp.Params[0].Clone(), sp.Params[1].Clone()}}
		tc.Args[0].Ints[0], tc.Args[1].Ints[0] = xy[0], xy[1]
		suite = append(suite, tc)
	}
	return suite
}

// The minimized suite must witness every branch outcome the full suite
// witnesses — the set-cover invariant, checked directly on the hit
// sets rather than through an end-to-end campaign.
func TestMinimizePreservesOutcomeWitnesses(t *testing.T) {
	u := cparser.MustParse(minimizeKernel)
	suite := minimizeSuite(t)
	min, err := Minimize(u, "kernel", suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) >= len(suite) {
		t.Fatalf("minimization kept %d of %d tests", len(min), len(suite))
	}
	outcomes := func(tests []TestCase) map[int]bool {
		res, err := collectHits(u, "kernel", tests, 1)
		if err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, r := range res {
			if r.crashed {
				continue
			}
			for _, b := range r.hits {
				set[b] = true
			}
		}
		return set
	}
	full, kept := outcomes(suite), outcomes(min)
	for b := range full {
		if !kept[b] {
			t.Errorf("outcome %d lost by minimization", b)
		}
	}
}

// Minimization is a pure function of the input suite: repeated runs and
// any worker count give the identical result.
func TestMinimizeDeterministic(t *testing.T) {
	u := cparser.MustParse(minimizeKernel)
	suite := minimizeSuite(t)
	render := func(tests []TestCase) string {
		s := ""
		for _, tc := range tests {
			s += fmt.Sprintf("(%d,%d)", tc.Args[0].Ints[0], tc.Args[1].Ints[0])
		}
		return s
	}
	first, err := Minimize(u, "kernel", suite)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		for _, workers := range []int{1, 4} {
			got, err := MinimizeParallel(u, "kernel", suite, workers)
			if err != nil {
				t.Fatal(err)
			}
			if render(got) != render(first) {
				t.Fatalf("run %d workers %d: %s != %s", run, workers, render(got), render(first))
			}
		}
	}
}

// Suites of size zero and one pass through untouched (no execution).
func TestMinimizeTrivialSuites(t *testing.T) {
	u := cparser.MustParse(minimizeKernel)
	if got, err := Minimize(u, "kernel", nil); err != nil || len(got) != 0 {
		t.Fatalf("nil suite: %v, %v", got, err)
	}
	one := minimizeSuite(t)[:1]
	got, err := Minimize(u, "kernel", one)
	if err != nil || len(got) != 1 {
		t.Fatalf("singleton suite: %v, %v", got, err)
	}
}

// A branchless kernel has no outcomes to cover; exactly one clean
// witness survives so differential testing still observes behaviour.
func TestMinimizeBranchlessKeepsOneWitness(t *testing.T) {
	u := cparser.MustParse(`int kernel(int x) { return x * 3 + 1; }`)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	var suite []TestCase
	for i := int64(0); i < 5; i++ {
		tc := TestCase{Args: []Arg{sp.Params[0].Clone()}}
		tc.Args[0].Ints[0] = i
		suite = append(suite, tc)
	}
	min, err := Minimize(u, "kernel", suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 1 {
		t.Fatalf("branchless kernel kept %d tests, want 1", len(min))
	}
	if min[0].Args[0].Ints[0] != 0 {
		t.Errorf("kept witness %d, want the earliest (0)", min[0].Args[0].Ints[0])
	}
}

// When every test crashes, minimization falls back to the first test
// rather than returning an empty suite.
func TestMinimizeAllCrashing(t *testing.T) {
	u := cparser.MustParse(`int kernel(int x) { return 10 / (x - x); }`)
	sp, err := SpecOf(u, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	var suite []TestCase
	for i := int64(0); i < 3; i++ {
		tc := TestCase{Args: []Arg{sp.Params[0].Clone()}}
		tc.Args[0].Ints[0] = i
		suite = append(suite, tc)
	}
	min, err := Minimize(u, "kernel", suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 1 {
		t.Fatalf("all-crashing suite kept %d tests, want the fallback single test", len(min))
	}
}
