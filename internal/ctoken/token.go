// Package ctoken defines the lexical tokens of the C subset handled by the
// HeteroGen frontend, together with source positions and the lexer that
// produces them.
//
// The subset covers everything the ten evaluation subjects and the six
// repair-pattern families need: the usual declarators and control flow,
// struct/union, pointers, dynamic allocation calls, HLS vendor types such
// as fpga_uint<7>, and #pragma HLS directives (which are lexed as a single
// PRAGMA token carrying the directive text).
package ctoken

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Literal and identifier kinds carry their text; operator and
// keyword kinds are fully identified by the kind alone.
const (
	EOF Kind = iota
	IDENT
	INTLIT   // 123, 0x7f, 'a'
	FLOATLIT // 1.5, 2e10
	STRLIT   // "..."
	CHARLIT  // 'c'
	PRAGMA   // #pragma ... (whole line, text in Lit)

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	ARROW    // ->
	ELLIPSIS // ...

	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND  // &
	OR   // |
	XOR  // ^
	SHL  // <<
	SHR  // >>
	NOT  // !
	TILD // ~

	LAND // &&
	LOR  // ||

	EQL // ==
	NEQ // !=
	LSS // <
	GTR // >
	LEQ // <=
	GEQ // >=

	ASSIGN     // =
	ADDASSIGN  // +=
	SUBASSIGN  // -=
	MULASSIGN  // *=
	QUOASSIGN  // /=
	REMASSIGN  // %=
	ANDASSIGN  // &=
	ORASSIGN   // |=
	XORASSIGN  // ^=
	SHLASSIGN  // <<=
	SHRASSIGN  // >>=
	INC        // ++
	DEC        // --
	QUESTION   // ?
	COLON      // :
	COLONCOLON // ::

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwSigned
	KwUnsigned
	KwBool
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwStatic
	KwConst
	KwExtern
	KwInline
	KwIf
	KwElse
	KwFor
	KwWhile
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwSwitch
	KwCase
	KwDefault
	KwGoto
	KwSizeof
	KwTrue
	KwFalse
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "IDENT", INTLIT: "INTLIT", FLOATLIT: "FLOATLIT",
	STRLIT: "STRLIT", CHARLIT: "CHARLIT", PRAGMA: "PRAGMA",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", SEMI: ";", COMMA: ",", DOT: ".",
	ARROW: "->", ELLIPSIS: "...",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>", NOT: "!", TILD: "~",
	LAND: "&&", LOR: "||",
	EQL: "==", NEQ: "!=", LSS: "<", GTR: ">", LEQ: "<=", GEQ: ">=",
	ASSIGN: "=", ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=",
	QUOASSIGN: "/=", REMASSIGN: "%=", ANDASSIGN: "&=", ORASSIGN: "|=",
	XORASSIGN: "^=", SHLASSIGN: "<<=", SHRASSIGN: ">>=",
	INC: "++", DEC: "--", QUESTION: "?", COLON: ":", COLONCOLON: "::",
	KwVoid: "void", KwChar: "char", KwShort: "short", KwInt: "int",
	KwLong: "long", KwFloat: "float", KwDouble: "double",
	KwSigned: "signed", KwUnsigned: "unsigned", KwBool: "bool",
	KwStruct: "struct", KwUnion: "union", KwEnum: "enum",
	KwTypedef: "typedef", KwStatic: "static", KwConst: "const",
	KwExtern: "extern", KwInline: "inline",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while", KwDo: "do",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default", KwGoto: "goto",
	KwSizeof: "sizeof", KwTrue: "true", KwFalse: "false",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"void": KwVoid, "char": KwChar, "short": KwShort, "int": KwInt,
	"long": KwLong, "float": KwFloat, "double": KwDouble,
	"signed": KwSigned, "unsigned": KwUnsigned, "bool": KwBool,
	"struct": KwStruct, "union": KwUnion, "enum": KwEnum,
	"typedef": KwTypedef, "static": KwStatic, "const": KwConst,
	"extern": KwExtern, "inline": KwInline,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile, "do": KwDo,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"goto": KwGoto, "sizeof": KwSizeof, "true": KwTrue, "false": KwFalse,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT/INTLIT/FLOATLIT/STRLIT/CHARLIT/PRAGMA
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, STRLIT, CHARLIT, PRAGMA:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether the kind is any assignment operator.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, ADDASSIGN, SUBASSIGN, MULASSIGN, QUOASSIGN, REMASSIGN,
		ANDASSIGN, ORASSIGN, XORASSIGN, SHLASSIGN, SHRASSIGN:
		return true
	}
	return false
}

// IsTypeStarter reports whether the kind can begin a type specifier.
func (k Kind) IsTypeStarter() bool {
	switch k {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwBool, KwStruct, KwUnion, KwEnum, KwConst,
		KwStatic, KwExtern, KwInline, KwTypedef:
		return true
	}
	return false
}
