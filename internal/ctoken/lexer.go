package ctoken

import (
	"fmt"
	"strings"
)

// Lexer turns C source text into a token stream. It strips // and /* */
// comments, folds #include and #define lines away (the subjects are
// self-contained), and lexes #pragma lines into PRAGMA tokens so the parser
// can attach them to the statement or declaration they precede.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isHex(c byte) bool    { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// skipWhitespaceAndComments advances past spaces and comments.
func (l *Lexer) skipWhitespaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.here()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipWhitespaceAndComments()
	p := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := l.peek()

	// Preprocessor lines. #pragma becomes a PRAGMA token; #include and
	// #define lines are skipped (the subjects carry no multi-file state).
	if c == '#' {
		lineStart := l.pos
		for l.pos < len(l.src) && l.peek() != '\n' {
			// Honor line continuations in pragmas/defines.
			if l.peek() == '\\' && l.peekAt(1) == '\n' {
				l.advance()
				l.advance()
				continue
			}
			l.advance()
		}
		text := strings.TrimSpace(l.src[lineStart:l.pos])
		if strings.HasPrefix(text, "#pragma") {
			body := strings.TrimSpace(strings.TrimPrefix(text, "#pragma"))
			return Token{Kind: PRAGMA, Lit: body, Pos: p}
		}
		return l.Next()
	}

	if isLetter(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := Keywords[word]; ok {
			return Token{Kind: k, Lit: word, Pos: p}
		}
		return Token{Kind: IDENT, Lit: word, Pos: p}
	}

	if isDigit(c) || (c == '.' && isDigit(l.peekAt(1))) {
		return l.lexNumber(p)
	}

	switch c {
	case '"':
		return l.lexString(p)
	case '\'':
		return l.lexChar(p)
	}

	// Operators and punctuation (longest match first).
	three := l.rest(3)
	switch three {
	case "<<=":
		l.advanceN(3)
		return Token{Kind: SHLASSIGN, Pos: p}
	case ">>=":
		l.advanceN(3)
		return Token{Kind: SHRASSIGN, Pos: p}
	case "...":
		l.advanceN(3)
		return Token{Kind: ELLIPSIS, Pos: p}
	}
	two := l.rest(2)
	if k, ok := twoCharOps[two]; ok {
		l.advanceN(2)
		return Token{Kind: k, Pos: p}
	}
	if k, ok := oneCharOps[c]; ok {
		l.advance()
		return Token{Kind: k, Pos: p}
	}

	l.errorf(p, "unexpected character %q", string(c))
	l.advance()
	return l.Next()
}

var twoCharOps = map[string]Kind{
	"->": ARROW, "++": INC, "--": DEC, "<<": SHL, ">>": SHR,
	"<=": LEQ, ">=": GEQ, "==": EQL, "!=": NEQ, "&&": LAND, "||": LOR,
	"+=": ADDASSIGN, "-=": SUBASSIGN, "*=": MULASSIGN, "/=": QUOASSIGN,
	"%=": REMASSIGN, "&=": ANDASSIGN, "|=": ORASSIGN, "^=": XORASSIGN,
	"::": COLONCOLON,
}

var oneCharOps = map[byte]Kind{
	'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE,
	'[': LBRACKET, ']': RBRACKET, ';': SEMI, ',': COMMA, '.': DOT,
	'+': ADD, '-': SUB, '*': MUL, '/': QUO, '%': REM,
	'&': AND, '|': OR, '^': XOR, '!': NOT, '~': TILD,
	'<': LSS, '>': GTR, '=': ASSIGN, '?': QUESTION, ':': COLON,
}

func (l *Lexer) rest(n int) string {
	if l.pos+n > len(l.src) {
		return ""
	}
	return l.src[l.pos : l.pos+n]
}

func (l *Lexer) advanceN(n int) {
	for i := 0; i < n; i++ {
		l.advance()
	}
}

func (l *Lexer) lexNumber(p Pos) Token {
	start := l.pos
	isFloat := false
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
				isFloat = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.pos < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: u, l, f in any reasonable combination.
	for l.pos < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
			continue
		case 'f', 'F':
			isFloat = true
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isFloat {
		return Token{Kind: FLOATLIT, Lit: text, Pos: p}
	}
	return Token{Kind: INTLIT, Lit: text, Pos: p}
}

func (l *Lexer) lexString(p Pos) Token {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '"' {
			return Token{Kind: STRLIT, Lit: sb.String(), Pos: p}
		}
		if c == '\\' {
			sb.WriteByte(unescape(l.advance()))
			continue
		}
		sb.WriteByte(c)
	}
	l.errorf(p, "unterminated string literal")
	return Token{Kind: STRLIT, Lit: sb.String(), Pos: p}
}

func (l *Lexer) lexChar(p Pos) Token {
	l.advance() // opening quote
	var val byte
	if l.peek() == '\\' {
		l.advance()
		val = unescape(l.advance())
	} else {
		val = l.advance()
	}
	if l.peek() == '\'' {
		l.advance()
	} else {
		l.errorf(p, "unterminated character literal")
	}
	return Token{Kind: CHARLIT, Lit: string(val), Pos: p}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	return c
}

// Tokenize lexes all of src and returns the token list terminated by EOF.
func Tokenize(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, l.Errors()
}
