package ctoken

import (
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicDeclaration(t *testing.T) {
	toks, errs := Tokenize("int x = 42;")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []Kind{KwInt, IDENT, ASSIGN, INTLIT, SEMI, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"+": ADD, "-": SUB, "*": MUL, "/": QUO, "%": REM,
		"<<": SHL, ">>": SHR, "<<=": SHLASSIGN, ">>=": SHRASSIGN,
		"==": EQL, "!=": NEQ, "<=": LEQ, ">=": GEQ,
		"&&": LAND, "||": LOR, "->": ARROW, "++": INC, "--": DEC,
		"+=": ADDASSIGN, "-=": SUBASSIGN, "*=": MULASSIGN, "/=": QUOASSIGN,
		"::": COLONCOLON, "...": ELLIPSIS, "?": QUESTION, ":": COLON,
	}
	for src, want := range cases {
		toks, errs := Tokenize(src)
		if len(errs) != 0 {
			t.Fatalf("%q: errors %v", src, errs)
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %s want %s", src, toks[0].Kind, want)
		}
		if toks[1].Kind != EOF {
			t.Errorf("%q: expected single token, got %v", src, kinds(toks))
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, _ := Tokenize("while whiles struct structure")
	want := []Kind{KwWhile, IDENT, KwStruct, IDENT, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"0", INTLIT}, {"42", INTLIT}, {"0x7f", INTLIT}, {"10u", INTLIT},
		{"100L", INTLIT}, {"1.5", FLOATLIT}, {"2e10", FLOATLIT},
		{"3.0f", FLOATLIT}, {".5", FLOATLIT}, {"1e-3", FLOATLIT},
	}
	for _, c := range cases {
		toks, errs := Tokenize(c.src)
		if len(errs) != 0 {
			t.Fatalf("%q: errors %v", c.src, errs)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%q: got %s want %s", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Lit != c.src {
			t.Errorf("%q: literal text %q", c.src, toks[0].Lit)
		}
	}
}

func TestLexDotNotFloat(t *testing.T) {
	toks, _ := Tokenize("s.pop()")
	want := []Kind{IDENT, DOT, IDENT, LPAREN, RPAREN, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %s want %s (all: %v)", i, toks[i].Kind, k, kinds(toks))
		}
	}
}

func TestLexPragma(t *testing.T) {
	toks, errs := Tokenize("#pragma HLS unroll factor=4\nint x;")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != PRAGMA {
		t.Fatalf("got %s want PRAGMA", toks[0].Kind)
	}
	if toks[0].Lit != "HLS unroll factor=4" {
		t.Errorf("pragma text %q", toks[0].Lit)
	}
	if toks[1].Kind != KwInt {
		t.Errorf("after pragma: got %s want int", toks[1].Kind)
	}
}

func TestLexSkipsIncludes(t *testing.T) {
	toks, _ := Tokenize("#include <hls_stream.h>\n#define N 10\nint x;")
	if toks[0].Kind != KwInt {
		t.Errorf("includes/defines not skipped: %v", kinds(toks))
	}
}

func TestLexComments(t *testing.T) {
	toks, errs := Tokenize("int /* block */ x; // line\nfloat y;")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []Kind{KwInt, IDENT, SEMI, KwFloat, IDENT, SEMI, EOF}
	got := kinds(toks)
	for i, k := range want {
		if got[i] != k {
			t.Errorf("token %d: got %s want %s", i, got[i], k)
		}
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	_, errs := Tokenize("int x; /* never closed")
	if len(errs) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestLexStringsAndChars(t *testing.T) {
	toks, errs := Tokenize(`"hello\n" 'a' '\n' '\0'`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != STRLIT || toks[0].Lit != "hello\n" {
		t.Errorf("string: %v %q", toks[0].Kind, toks[0].Lit)
	}
	if toks[1].Kind != CHARLIT || toks[1].Lit != "a" {
		t.Errorf("char: %v %q", toks[1].Kind, toks[1].Lit)
	}
	if toks[2].Lit != "\n" {
		t.Errorf("escaped char: %q", toks[2].Lit)
	}
	if toks[3].Lit != "\x00" {
		t.Errorf("nul char: %q", toks[3].Lit)
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Tokenize("int x;\nfloat y;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos %v", toks[0].Pos)
	}
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 1 {
		t.Errorf("float pos %v", toks[3].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	toks, errs := Tokenize("int x @ y;")
	if len(errs) == 0 {
		t.Error("expected error for @")
	}
	// Lexing continues past the bad character.
	found := false
	for _, tok := range toks {
		if tok.Kind == IDENT && tok.Lit == "y" {
			found = true
		}
	}
	if !found {
		t.Error("lexer did not recover after bad character")
	}
}

// Property: lexing always terminates and always ends with EOF, for any
// input string.
func TestLexAlwaysTerminatesWithEOF(t *testing.T) {
	f := func(src string) bool {
		toks, _ := Tokenize(src)
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: identifier-only inputs round-trip exactly.
func TestLexIdentifierRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		name := "v"
		for i := uint8(0); i < n%20; i++ {
			name += string(rune('a' + i%26))
		}
		toks, errs := Tokenize(name)
		return len(errs) == 0 && toks[0].Kind == IDENT && toks[0].Lit == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindStringTotal(t *testing.T) {
	for k := EOF; k <= KwFalse; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestIsAssignOp(t *testing.T) {
	for _, k := range []Kind{ASSIGN, ADDASSIGN, SHRASSIGN} {
		if !k.IsAssignOp() {
			t.Errorf("%s should be assign op", k)
		}
	}
	for _, k := range []Kind{EQL, ADD, INC} {
		if k.IsAssignOp() {
			t.Errorf("%s should not be assign op", k)
		}
	}
}
