package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// Kind names one injectable violation shape.
type Kind string

// The injectable violation kinds, mapped to the error classes of the
// paper's Table 1.
const (
	// KindRecursion plants a self-recursive void helper in the shape
	// stack_trans supports (top-level recursive tail statement, arrays
	// passed through unchanged, bounded depth).
	KindRecursion Kind = "recursion"
	// KindMalloc plants a (struct T*)malloc/free pair — the
	// insert+pointer pool-transformation shape of Figure 2.
	KindMalloc Kind = "malloc"
	// KindVLA plants a runtime-sized local array (unknown-bound
	// access); array_static finitizes it.
	KindVLA Kind = "vla"
	// KindPointer plants a local pointer alias into a top-interface
	// array; pointer_var inlines it away.
	KindPointer Kind = "pointer"
	// KindLongDouble plants a long double local; type_trans converts
	// it to fpga_float.
	KindLongDouble Kind = "longdouble"
	// KindTopPragma plants a file-scope "#pragma HLS top" naming the
	// wrong function; top_rename/top_delete_pragma fix it.
	KindTopPragma Kind = "top_pragma"
	// KindLoopPragma plants an unroll or array_partition directive on
	// a counted loop with a factor that does not divide the trip
	// count; delete_loop_pragma (or a legal re-explore) fixes it.
	KindLoopPragma Kind = "loop_pragma"
)

// AllKinds returns every injectable kind in deterministic order.
func AllKinds() []Kind {
	return []Kind{KindRecursion, KindMalloc, KindVLA, KindPointer,
		KindLongDouble, KindTopPragma, KindLoopPragma}
}

// ClassOf maps a violation kind to the error class the checker must
// report for it (Table 1). Unknown kinds map to the zero class.
func ClassOf(k Kind) hls.ErrorClass {
	switch k {
	case KindRecursion, KindMalloc, KindVLA:
		return hls.ClassDynamicData
	case KindPointer, KindLongDouble:
		return hls.ClassUnsupportedType
	case KindTopPragma:
		return hls.ClassTopFunction
	case KindLoopPragma:
		return hls.ClassLoopParallel
	}
	return 0
}

// Violation is one oracle entry: a planted incompatibility and the
// error class the checker must report for it.
type Violation struct {
	Kind    Kind
	Class   hls.ErrorClass
	Subject string // entity the diagnostic should concern
	Detail  string // human-readable note (pragma text, depth, ...)
}

// Program is one generated kernel plus its oracle.
type Program struct {
	Seed   int64
	Kernel string
	// Source is the generated C text; Unit is its parse (already
	// branch-numbered by the frontend).
	Source string
	Unit   *cast.Unit
	// N is the top-interface array extent.
	N int
	// Planted is the violation oracle, in deterministic order.
	Planted []Violation
}

// Options configures one generation. The zero value generates a
// violation-carrying program for seed 0.
type Options struct {
	Seed int64
	// Clean suppresses violation injection: the program must pass the
	// checker with zero diagnostics.
	Clean bool
	// MaxViolations bounds how many distinct kinds are injected
	// (default 3; at least one is always planted unless Clean).
	MaxViolations int
	// Kinds restricts the injectable set (default AllKinds).
	Kinds []Kind
}

// DefaultMaxViolations is the default cap on planted kinds per program.
const DefaultMaxViolations = 3

// Generate produces the program for the given options. It fails only
// on internal inconsistency (the emitted source must re-parse and every
// planted violation must be structurally present), which tests assert
// never happens over large seed ranges.
func Generate(opts Options) (Program, error) {
	g := &gen{r: rand.New(rand.NewSource(opts.Seed))}
	p := g.program(opts)
	p.Seed = opts.Seed
	u, err := cparser.Parse(p.Source)
	if err != nil {
		return Program{}, fmt.Errorf("progen: seed %d emitted unparsable source: %w\n%s",
			opts.Seed, err, p.Source)
	}
	p.Unit = u
	for _, v := range p.Planted {
		if !Present(u, v) {
			return Program{}, fmt.Errorf("progen: seed %d planted %s/%s but it is not present in the parse",
				opts.Seed, v.Kind, v.Subject)
		}
	}
	return p, nil
}

// MustGenerate is Generate for tests and tools where a generator
// inconsistency is a bug.
func MustGenerate(opts Options) Program {
	p, err := Generate(opts)
	if err != nil {
		panic(err)
	}
	return p
}

// Present reports whether the construct a violation describes still
// exists in the unit — the structural half of the oracle. The reducer
// uses it to keep a shrinking program faithful to the original failure
// (a reproducer that lost its planted construct reproduces nothing).
func Present(u *cast.Unit, v Violation) bool {
	switch v.Kind {
	case KindRecursion:
		fn := u.Func(v.Subject)
		return fn != nil && len(cast.CallsTo(fn, v.Subject)) > 0
	case KindMalloc:
		found := false
		cast.Inspect(u, func(n cast.Node) bool {
			if c, ok := n.(*cast.Call); ok {
				if id, ok := c.Fun.(*cast.Ident); ok && id.Name == "malloc" {
					found = true
				}
			}
			return true
		})
		return found
	case KindVLA:
		found := false
		cast.Inspect(u, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok {
				if a, ok := ctypes.Resolve(d.Type).(ctypes.Array); ok && a.Len <= 0 {
					found = true
				}
			}
			return true
		})
		return found
	case KindPointer:
		found := false
		cast.Inspect(u, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok && d.Name == v.Subject {
				if _, ok := ctypes.Resolve(d.Type).(ctypes.Pointer); ok {
					found = true
				}
			}
			return true
		})
		return found
	case KindLongDouble:
		found := false
		cast.Inspect(u, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok {
				if f, ok := ctypes.Resolve(d.Type).(ctypes.Float); ok && f.FK == ctypes.F80 {
					found = true
				}
			}
			return true
		})
		return found
	case KindTopPragma:
		// The frontend attaches a file-scope pragma immediately
		// preceding a function to that function's head, so look in
		// both places (the checker does the same).
		isTop := func(text string) bool {
			dir := interp.ParsePragma(text)
			return dir.Kind == interp.PragmaTop && dir.Name == v.Subject
		}
		for _, d := range u.Decls {
			switch x := d.(type) {
			case *cast.PragmaDecl:
				if isTop(x.Text) {
					return true
				}
			case *cast.FuncDecl:
				for _, p := range x.Pragmas {
					if isTop(p.Text) {
						return true
					}
				}
			}
		}
		return false
	case KindLoopPragma:
		// Pragma nodes store the text without the "#pragma " prefix. An
		// empty Detail (a replayed reproducer, which records only kind
		// and subject) matches any loop pragma.
		want := strings.TrimPrefix(v.Detail, "#pragma ")
		found := false
		cast.Inspect(u, func(n cast.Node) bool {
			var pragmas []*cast.Pragma
			switch l := n.(type) {
			case *cast.For:
				pragmas = l.Pragmas
			case *cast.While:
				pragmas = l.Pragmas
			}
			for _, p := range pragmas {
				if v.Detail == "" || p.Text == want {
					found = true
				}
			}
			return true
		})
		return found
	}
	return false
}

// ---------------------------------------------------------------------------
// Generator internals. All randomness flows through g.r in a fixed
// draw order, so output is a pure function of the seed.

type gen struct {
	r         *rand.Rand
	n         int // top-interface array extent
	hasB      bool
	hasHelper bool
	loops     int // unique-counter for loop variables
	body      []string
	decls     []string
}

func (g *gen) ci(lo, hi int) int { return lo + g.r.Intn(hi-lo+1) }

func (g *gen) pick(xs ...string) string { return xs[g.r.Intn(len(xs))] }

// program emits the full source text and oracle for one seed.
func (g *gen) program(opts Options) Program {
	g.n = []int{16, 32, 64}[g.r.Intn(3)]
	g.hasB = g.r.Intn(2) == 0
	g.hasHelper = g.r.Intn(2) == 0

	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	maxV := opts.MaxViolations
	if maxV <= 0 {
		maxV = DefaultMaxViolations
	}
	if maxV > len(kinds) {
		maxV = len(kinds)
	}
	// Select 1..maxV distinct kinds by a seeded shuffle. The draw
	// happens even for clean programs so that a clean/dirty pair from
	// the same seed shares its base-program shape.
	count := 1 + g.r.Intn(maxV)
	perm := g.r.Perm(len(kinds))
	selected := map[Kind]bool{}
	for _, idx := range perm[:count] {
		selected[kinds[idx]] = true
	}
	if opts.Clean {
		selected = map[Kind]bool{}
	}

	var planted []Violation
	plant := func(v Violation) { planted = append(planted, v) }

	if g.hasHelper {
		g.decls = append(g.decls, fmt.Sprintf(
			"static int helper(int x) {\n    return (x %s %d) ^ %d;\n}",
			g.pick("*", "+", "-"), g.ci(2, 9), g.ci(1, 63)))
	}

	// Base body: an accumulator plus 2-4 constructs from the menu.
	g.body = append(g.body, fmt.Sprintf("int acc = %d;", g.ci(0, 99)))
	for i, n := 0, 2+g.r.Intn(3); i < n; i++ {
		g.construct()
	}

	// Injections, in the fixed order of AllKinds so the oracle order
	// is deterministic regardless of the selection shuffle.
	if selected[KindRecursion] {
		// Mostly shallow (the initial 32-frame stack suffices), but one
		// in four exceeds it so the search must take the resize path.
		depth := g.ci(4, 12)
		if g.r.Intn(4) == 0 {
			depth = g.ci(40, 60)
			if depth > g.n {
				depth = g.n // recursion indexes a[ri]: stay in bounds
			}
		}
		g.decls = append(g.decls, fmt.Sprintf(
			"static void rec_add(int a[%d], int out[%d], int ri) {\n"+
				"    if (ri >= %d) {\n        return;\n    }\n"+
				"    out[ri] = out[ri] + a[ri];\n"+
				"    rec_add(a, out, ri + 1);\n}", g.n, g.n, depth))
		g.body = append(g.body, "rec_add(a, out, 0);")
		plant(Violation{Kind: KindRecursion, Class: hls.ClassDynamicData,
			Subject: "rec_add", Detail: fmt.Sprintf("depth=%d", depth)})
	}
	if selected[KindMalloc] {
		g.decls = append(g.decls, "struct Pack {\n    int pv;\n    int pw;\n};")
		g.body = append(g.body,
			"struct Pack *pk = (struct Pack *)malloc(sizeof(struct Pack));",
			fmt.Sprintf("pk->pv = s + %d;", g.ci(1, 49)),
			"pk->pw = pk->pv * 2;",
			"acc = acc + pk->pw;",
			"free(pk);")
		plant(Violation{Kind: KindMalloc, Class: hls.ClassDynamicData,
			Subject: "malloc", Detail: "struct Pack pool shape"})
	}
	if selected[KindVLA] {
		iv := g.loopVar()
		c := g.ci(1, 9)
		// Mostly small bounds (the initial 64-element finitization
		// suffices), but one in four can exceed 64 at runtime so the
		// search must grow the array via resize.
		mask := 7
		if g.r.Intn(4) == 0 {
			mask = 127
		}
		g.body = append(g.body,
			fmt.Sprintf("int vn = (s & %d) + 2;", mask),
			"int vbuf[vn];",
			fmt.Sprintf("for (int %s = 0; %s < vn; %s++) {", iv, iv, iv),
			fmt.Sprintf("    vbuf[%s] = %s * %d;", iv, iv, c),
			"}",
			"acc = acc + vbuf[vn - 1];")
		plant(Violation{Kind: KindVLA, Class: hls.ClassDynamicData,
			Subject: "vbuf", Detail: "runtime-sized local array"})
	}
	if selected[KindPointer] {
		if g.r.Intn(2) == 0 {
			k := g.ci(0, 3)
			g.body = append(g.body,
				fmt.Sprintf("int *ptr = &a[%d];", k),
				"acc = acc + ptr[0] + ptr[1];")
		} else {
			g.body = append(g.body,
				"int *ptr = a;",
				fmt.Sprintf("acc = acc + *ptr + ptr[%d];", g.ci(1, 5)))
		}
		plant(Violation{Kind: KindPointer, Class: hls.ClassUnsupportedType,
			Subject: "ptr", Detail: "local alias into top-interface array"})
	}
	if selected[KindLongDouble] {
		g.body = append(g.body,
			fmt.Sprintf("long double lacc = %d.5;", g.ci(0, 3)),
			"lacc = lacc + (a[0] & 1023);",
			"lacc = lacc * 2.0;",
			"acc = acc + (int)lacc;")
		plant(Violation{Kind: KindLongDouble, Class: hls.ClassUnsupportedType,
			Subject: "lacc", Detail: "long double local"})
	}
	if selected[KindTopPragma] {
		plant(Violation{Kind: KindTopPragma, Class: hls.ClassTopFunction,
			Subject: "main_entry", Detail: "#pragma HLS top name=main_entry"})
	}

	// The closing output loop always exists; a planted loop pragma
	// attaches here so its trip count is the statically known N.
	var loopPragma string
	if selected[KindLoopPragma] {
		factor := []int{3, 5, 7}[g.r.Intn(3)]
		if g.r.Intn(2) == 0 {
			loopPragma = fmt.Sprintf("#pragma HLS unroll factor=%d", factor)
			plant(Violation{Kind: KindLoopPragma, Class: hls.ClassLoopParallel,
				Subject: "unroll", Detail: loopPragma})
		} else {
			loopPragma = fmt.Sprintf("#pragma HLS array_partition variable=a cyclic factor=%d", factor)
			plant(Violation{Kind: KindLoopPragma, Class: hls.ClassLoopParallel,
				Subject: "a", Detail: loopPragma})
		}
	}
	fo := g.loopVar()
	g.body = append(g.body, fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", fo, fo, g.n, fo))
	if loopPragma != "" {
		g.body = append(g.body, loopPragma)
	}
	g.body = append(g.body,
		fmt.Sprintf("    out[%s] = out[%s] ^ (acc + %s);", fo, fo, fo),
		"}",
		"return acc;")

	// Assemble the translation unit.
	var b strings.Builder
	if selected[KindTopPragma] {
		b.WriteString("#pragma HLS top name=main_entry\n")
	}
	for _, d := range g.decls {
		b.WriteString(d)
		b.WriteString("\n")
	}
	params := fmt.Sprintf("int a[%d], ", g.n)
	if g.hasB {
		params += fmt.Sprintf("int b[%d], ", g.n)
	}
	params += fmt.Sprintf("int s, int out[%d]", g.n)
	b.WriteString(fmt.Sprintf("int kernel(%s) {\n", params))
	for _, line := range g.body {
		if strings.HasPrefix(line, "#pragma") {
			b.WriteString(line)
		} else {
			b.WriteString("    " + line)
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")

	return Program{
		Kernel:  "kernel",
		Source:  b.String(),
		N:       g.n,
		Planted: planted,
	}
}

func (g *gen) loopVar() string {
	g.loops++
	return fmt.Sprintf("i%d", g.loops-1)
}

// term returns a stored value usable on either side of ring-safe
// arithmetic: an input element, the scalar, or a small constant.
// Stored values are safe under bitwidth finitization because the
// profiled width covers every value they ever hold; compound
// intermediates are only combined with +,-,*,&,|,^,<< (congruent mod
// 2^w), never compared or right-shifted.
func (g *gen) term(iv string) string {
	switch n := g.r.Intn(4); {
	case n == 0 && iv != "":
		return fmt.Sprintf("a[%s]", iv)
	case n == 1 && g.hasB && iv != "":
		return fmt.Sprintf("b[%s]", iv)
	case n == 2:
		return "s"
	default:
		return fmt.Sprintf("%d", g.ci(1, 99))
	}
}

// expr builds a small ring-safe expression over stored terms.
func (g *gen) expr(iv string) string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("%s %s %s", g.term(iv), g.pick("+", "-", "*", "&", "|", "^"), g.term(iv))
	case 1:
		// Right shift is not congruent mod 2^w, so only stored values
		// are shifted (see term's comment).
		stored := "s"
		if iv != "" && g.r.Intn(2) == 0 {
			stored = fmt.Sprintf("a[%s]", iv)
		}
		return fmt.Sprintf("(%s >> %d) & %d", stored, g.ci(1, 4), g.ci(1, 255))
	default:
		return fmt.Sprintf("(%s %s %s) %s %d",
			g.term(iv), g.pick("+", "^"), g.term(iv), g.pick("*", "+", "^"), g.ci(1, 31))
	}
}

// construct appends one menu construct to the body.
func (g *gen) construct() {
	switch g.r.Intn(7) {
	case 0: // output loop
		iv := g.loopVar()
		g.body = append(g.body,
			fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.n, iv),
			fmt.Sprintf("    out[%s] = %s;", iv, g.expr(iv)),
			"}")
	case 1: // accumulation loop with a branch
		iv := g.loopVar()
		g.body = append(g.body,
			fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.n, iv),
			fmt.Sprintf("    if (a[%s] > %d) {", iv, g.ci(0, 50)),
			fmt.Sprintf("        acc = acc + %s;", g.expr(iv)),
			"    } else {",
			fmt.Sprintf("        acc = acc - %s;", g.expr(iv)),
			"    }",
			"}")
	case 2: // plain accumulation loop
		iv := g.loopVar()
		g.body = append(g.body,
			fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.n, iv),
			fmt.Sprintf("    acc = acc %s %s;", g.pick("+", "^"), g.expr(iv)),
			"}")
	case 3: // nested bit loop
		iv, jv := g.loopVar(), g.loopVar()
		g.body = append(g.body,
			fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.n, iv),
			fmt.Sprintf("    for (int %s = 0; %s < 4; %s++) {", jv, jv, jv),
			fmt.Sprintf("        acc = acc + ((a[%s] >> %s) & 1);", iv, jv),
			"    }",
			"}")
	case 4: // data-dependent countdown
		tv := fmt.Sprintf("t%d", g.loops)
		g.loops++
		g.body = append(g.body,
			fmt.Sprintf("int %s = s & 15;", tv),
			fmt.Sprintf("while (%s > 0) {", tv),
			fmt.Sprintf("    acc = acc + %s;", tv),
			fmt.Sprintf("    %s = %s - 1;", tv, tv),
			"}")
	case 5: // switch on low scalar bits
		g.body = append(g.body,
			"switch (s & 3) {",
			"case 0:",
			fmt.Sprintf("    acc = acc + %d;", g.ci(1, 20)),
			"    break;",
			"case 1:",
			fmt.Sprintf("    acc = acc ^ %d;", g.ci(1, 20)),
			"    break;",
			"default:",
			fmt.Sprintf("    acc = acc - %d;", g.ci(1, 20)),
			"    break;",
			"}")
	default: // helper call or ternary
		if g.hasHelper {
			iv := g.loopVar()
			g.body = append(g.body,
				fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.n, iv),
				fmt.Sprintf("    out[%s] = helper(a[%s]) + acc;", iv, iv),
				"}")
		} else {
			g.body = append(g.body, fmt.Sprintf(
				"acc = acc + ((s > %d) ? %d : %d);", g.ci(0, 40), g.ci(1, 30), g.ci(1, 30)))
		}
	}
}
