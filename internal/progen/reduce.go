package progen

import (
	"github.com/hetero/heterogen/internal/cast"
)

// ReduceOptions bounds the delta-debugging search.
type ReduceOptions struct {
	// MaxTrials caps predicate invocations (default 3000). The cap is
	// deterministic: the same input and predicate always make the same
	// sequence of trials.
	MaxTrials int
}

// DefaultMaxTrials is the default predicate-invocation budget.
const DefaultMaxTrials = 3000

// Reduce shrinks a failing program to a smaller one that still fails,
// in the delta-debugging sense: keep is the "still interesting"
// predicate (typically "this checker/repair/difftest assertion still
// fails, and the planted construct is still present" — see Present),
// and Reduce greedily applies node-count-reducing AST mutations —
// dropping declarations, statement chunks and single statements,
// unwrapping control flow, clearing pragmas, and replacing binary and
// conditional expressions with their operands — keeping each mutation
// only when the predicate still holds, until a fixed point or the
// trial budget. The input unit is never modified; the result is a
// fresh clone. If keep rejects the input itself, a clone of the input
// is returned unchanged.
//
// The mutation enumeration order is a pure function of the program
// shape, so a given (unit, predicate) pair reduces identically on
// every run — reducer output is committed to testdata/conform/ as
// regression input, where nondeterminism would churn the corpus.
func Reduce(u *cast.Unit, keep func(*cast.Unit) bool, opts ReduceOptions) *cast.Unit {
	maxTrials := opts.MaxTrials
	if maxTrials <= 0 {
		maxTrials = DefaultMaxTrials
	}
	trials := 0
	try := func(c *cast.Unit) bool {
		if trials >= maxTrials {
			return false
		}
		trials++
		return keep(c)
	}

	best := cast.CloneUnit(u)
	if trials++; !keep(best) {
		return best
	}
	for {
		improved := false
		muts := enumerate(best)
		for k := 0; k < len(muts) && trials < maxTrials; {
			c := cast.CloneUnit(best)
			if !apply(c, muts[k]) || !try(c) {
				k++
				continue
			}
			best = c
			improved = true
			// The tree changed: re-enumerate, but resume at the same
			// index — earlier mutations were already tried and the
			// list only shrinks ahead of k after a removal.
			muts = enumerate(best)
		}
		if !improved || trials >= maxTrials {
			return best
		}
	}
}

// mutation addresses one candidate shrink on a unit by stable walk
// indices, so it can be re-applied to any clone of that unit.
type mutation struct {
	kind    mkind
	decl    int // dropDecl, clearFnPragmas
	list    int // statement-list index (dropStmts, replaceStmt, clearLoopPragmas)
	off     int // statement offset in the list
	n       int // chunk length (dropStmts)
	variant int // replaceStmt / simplifyExpr variant
	expr    int // expression index (simplifyExpr)
}

type mkind int

const (
	mDropDecl mkind = iota
	mDropStmts
	mReplaceStmt
	mClearFnPragmas
	mClearLoopPragmas
	mSimplifyExpr
)

// Statement-replacement variants.
const (
	rIfThen = iota
	rIfElse
	rForBody
	rWhileBody
	rBlockSplice
)

// Expression-simplification variants.
const (
	eBinaryL = iota
	eBinaryR
	eCondT
	eCondF
)

// enumerate lists every applicable mutation of u in deterministic
// order: coarse shrinks (whole declarations, statement chunks) before
// fine ones (single statements, control-flow unwrapping, pragmas,
// expression operands), so the greedy loop removes big subtrees first.
func enumerate(u *cast.Unit) []mutation {
	var out []mutation
	for i := range u.Decls {
		out = append(out, mutation{kind: mDropDecl, decl: i})
	}
	// Statement chunks, large to small, then singles.
	lists := listLengths(u)
	for _, size := range []int{8, 4, 2, 1} {
		for li, n := range lists {
			for off := 0; off+size <= n; off += size {
				out = append(out, mutation{kind: mDropStmts, list: li, off: off, n: size})
			}
		}
	}
	// Control-flow unwrapping and loop-pragma clearing.
	eachList(u, func(li int, stmts []cast.Stmt) {
		for off, s := range stmts {
			switch x := s.(type) {
			case *cast.If:
				out = append(out, mutation{kind: mReplaceStmt, list: li, off: off, variant: rIfThen})
				if x.Else != nil {
					out = append(out, mutation{kind: mReplaceStmt, list: li, off: off, variant: rIfElse})
				}
			case *cast.For:
				out = append(out, mutation{kind: mReplaceStmt, list: li, off: off, variant: rForBody})
				if len(x.Pragmas) > 0 {
					out = append(out, mutation{kind: mClearLoopPragmas, list: li, off: off})
				}
			case *cast.While:
				out = append(out, mutation{kind: mReplaceStmt, list: li, off: off, variant: rWhileBody})
				if len(x.Pragmas) > 0 {
					out = append(out, mutation{kind: mClearLoopPragmas, list: li, off: off})
				}
			case *cast.Block:
				out = append(out, mutation{kind: mReplaceStmt, list: li, off: off, variant: rBlockSplice})
			}
		}
	})
	for i, d := range u.Decls {
		if fn, ok := d.(*cast.FuncDecl); ok && len(fn.Pragmas) > 0 {
			out = append(out, mutation{kind: mClearFnPragmas, decl: i})
		}
	}
	// Expression operands.
	ei := 0
	cast.MapExprs(u, func(e cast.Expr) cast.Expr {
		switch x := e.(type) {
		case *cast.Binary:
			out = append(out, mutation{kind: mSimplifyExpr, expr: ei, variant: eBinaryL})
			out = append(out, mutation{kind: mSimplifyExpr, expr: ei, variant: eBinaryR})
		case *cast.Cond:
			out = append(out, mutation{kind: mSimplifyExpr, expr: ei, variant: eCondT})
			_ = x
			out = append(out, mutation{kind: mSimplifyExpr, expr: ei, variant: eCondF})
		}
		ei++
		return e
	})
	return out
}

// apply performs m on u (a clone), returning false when the mutation no
// longer addresses a valid site (stale index after a prior shrink).
func apply(u *cast.Unit, m mutation) bool {
	switch m.kind {
	case mDropDecl:
		if m.decl >= len(u.Decls) {
			return false
		}
		u.Decls = append(u.Decls[:m.decl], u.Decls[m.decl+1:]...)
		return true
	case mDropStmts:
		return editList(u, m.list, func(stmts []cast.Stmt) ([]cast.Stmt, bool) {
			if m.off+m.n > len(stmts) {
				return stmts, false
			}
			out := append([]cast.Stmt{}, stmts[:m.off]...)
			return append(out, stmts[m.off+m.n:]...), true
		})
	case mReplaceStmt:
		return editList(u, m.list, func(stmts []cast.Stmt) ([]cast.Stmt, bool) {
			if m.off >= len(stmts) {
				return stmts, false
			}
			var repl []cast.Stmt
			switch x := stmts[m.off].(type) {
			case *cast.If:
				switch m.variant {
				case rIfThen:
					repl = []cast.Stmt{x.Then}
				case rIfElse:
					if x.Else == nil {
						return stmts, false
					}
					repl = []cast.Stmt{x.Else}
				default:
					return stmts, false
				}
			case *cast.For:
				if m.variant != rForBody {
					return stmts, false
				}
				repl = []cast.Stmt{x.Body}
			case *cast.While:
				if m.variant != rWhileBody {
					return stmts, false
				}
				repl = []cast.Stmt{x.Body}
			case *cast.Block:
				if m.variant != rBlockSplice {
					return stmts, false
				}
				repl = x.Stmts
			default:
				return stmts, false
			}
			out := append([]cast.Stmt{}, stmts[:m.off]...)
			out = append(out, repl...)
			return append(out, stmts[m.off+1:]...), true
		})
	case mClearFnPragmas:
		if m.decl >= len(u.Decls) {
			return false
		}
		fn, ok := u.Decls[m.decl].(*cast.FuncDecl)
		if !ok || len(fn.Pragmas) == 0 {
			return false
		}
		fn.Pragmas = nil
		return true
	case mClearLoopPragmas:
		return editList(u, m.list, func(stmts []cast.Stmt) ([]cast.Stmt, bool) {
			if m.off >= len(stmts) {
				return stmts, false
			}
			switch x := stmts[m.off].(type) {
			case *cast.For:
				if len(x.Pragmas) == 0 {
					return stmts, false
				}
				x.Pragmas = nil
			case *cast.While:
				if len(x.Pragmas) == 0 {
					return stmts, false
				}
				x.Pragmas = nil
			default:
				return stmts, false
			}
			return stmts, true
		})
	case mSimplifyExpr:
		ei, done := 0, false
		cast.MapExprs(u, func(e cast.Expr) cast.Expr {
			idx := ei
			ei++
			if idx != m.expr || done {
				return e
			}
			switch x := e.(type) {
			case *cast.Binary:
				if m.variant == eBinaryL {
					done = true
					return x.L
				}
				if m.variant == eBinaryR {
					done = true
					return x.R
				}
			case *cast.Cond:
				if m.variant == eCondT {
					done = true
					return x.T
				}
				if m.variant == eCondF {
					done = true
					return x.F
				}
			}
			return e
		})
		return done
	}
	return false
}

// eachList visits every statement list in the unit — function bodies,
// nested blocks, loop and branch bodies that are blocks, switch-case
// arms — in a stable depth-first order, assigning consecutive indices.
func eachList(u *cast.Unit, f func(li int, stmts []cast.Stmt)) {
	li := 0
	var walkStmt func(s cast.Stmt)
	walkBlock := func(b *cast.Block) {
		f(li, b.Stmts)
		li++
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s cast.Stmt) {
		switch x := s.(type) {
		case *cast.Block:
			walkBlock(x)
		case *cast.If:
			walkStmt(x.Then)
			if x.Else != nil {
				walkStmt(x.Else)
			}
		case *cast.For:
			walkStmt(x.Body)
		case *cast.While:
			walkStmt(x.Body)
		case *cast.Switch:
			for _, c := range x.Cases {
				f(li, c.Body)
				li++
				for _, s := range c.Body {
					walkStmt(s)
				}
			}
		}
	}
	for _, d := range u.Decls {
		if fn, ok := d.(*cast.FuncDecl); ok && fn.Body != nil {
			walkBlock(fn.Body)
		}
	}
}

// listLengths returns the length of each statement list in eachList
// order.
func listLengths(u *cast.Unit) []int {
	var out []int
	eachList(u, func(li int, stmts []cast.Stmt) { out = append(out, len(stmts)) })
	return out
}

// editList applies f to statement list #target, writing the returned
// slice back into its container. Returns f's ok alongside whether the
// list was found.
func editList(u *cast.Unit, target int, f func([]cast.Stmt) ([]cast.Stmt, bool)) bool {
	li := 0
	ok := false
	var walkStmt func(s cast.Stmt)
	walkBlock := func(b *cast.Block) {
		if li == target {
			b.Stmts, ok = f(b.Stmts)
		}
		li++
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s cast.Stmt) {
		switch x := s.(type) {
		case *cast.Block:
			walkBlock(x)
		case *cast.If:
			walkStmt(x.Then)
			if x.Else != nil {
				walkStmt(x.Else)
			}
		case *cast.For:
			walkStmt(x.Body)
		case *cast.While:
			walkStmt(x.Body)
		case *cast.Switch:
			for _, c := range x.Cases {
				if li == target {
					c.Body, ok = f(c.Body)
				}
				li++
				for _, s := range c.Body {
					walkStmt(s)
				}
			}
		}
	}
	for _, d := range u.Decls {
		if fn, ok := d.(*cast.FuncDecl); ok && fn.Body != nil {
			walkBlock(fn.Body)
		}
	}
	return ok
}
