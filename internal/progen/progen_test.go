package progen

import (
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
)

func cfg() hls.Config { return hls.DefaultConfig("kernel") }

// The same seed must reproduce the identical program and oracle —
// reproducer corpora and CI runs depend on it.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := MustGenerate(Options{Seed: seed})
		b := MustGenerate(Options{Seed: seed})
		if a.Source != b.Source {
			t.Fatalf("seed %d: sources differ", seed)
		}
		if len(a.Planted) != len(b.Planted) {
			t.Fatalf("seed %d: oracle records differ in length", seed)
		}
		for i := range a.Planted {
			if a.Planted[i] != b.Planted[i] {
				t.Fatalf("seed %d: planted[%d] differs: %+v vs %+v", seed, i, a.Planted[i], b.Planted[i])
			}
		}
	}
}

// A clean twin (same seed, Clean: true) must pass the checker with no
// diagnostics: the generator never emits accidental violations.
func TestCleanProgramsCheckerClean(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		p := MustGenerate(Options{Seed: seed, Clean: true})
		if len(p.Planted) != 0 {
			t.Fatalf("seed %d: clean program has %d planted violations", seed, len(p.Planted))
		}
		rep := check.Run(p.Unit, cfg())
		if !rep.OK {
			t.Fatalf("seed %d: checker reports %d diagnostics on clean program; first: %v",
				seed, len(rep.Diags), rep.Diags[0])
		}
	}
}

// Every planted violation must be structurally present (the generator's
// own invariant, re-checked here without going through Generate's
// internal self-check) and flagged by the checker with its class.
func TestPlantedViolationsFlagged(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		p := MustGenerate(Options{Seed: seed})
		if len(p.Planted) == 0 {
			t.Fatalf("seed %d: no planted violations", seed)
		}
		rep := check.Run(p.Unit, cfg())
		for _, v := range p.Planted {
			if !Present(p.Unit, v) {
				t.Errorf("seed %d: planted %s (%s) not structurally present", seed, v.Kind, v.Subject)
			}
			if !rep.HasClass(v.Class) {
				t.Errorf("seed %d: planted %s not flagged as %s", seed, v.Kind, v.Class)
			}
		}
	}
}

// Generated source must round-trip: parse -> print -> parse -> print is
// stable, so reducer output and reproducer files re-parse faithfully.
func TestGeneratedSourceRoundTrips(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		p := MustGenerate(Options{Seed: seed})
		s1 := cast.Print(p.Unit)
		u2, err := cparser.Parse(s1)
		if err != nil {
			t.Fatalf("seed %d: printed source does not re-parse: %v", seed, err)
		}
		if s2 := cast.Print(u2); s1 != s2 {
			t.Fatalf("seed %d: print -> parse -> print not stable", seed)
		}
	}
}

// Options.Kinds restricts injection to the requested violation kinds.
func TestKindsRestriction(t *testing.T) {
	for _, k := range AllKinds() {
		p := MustGenerate(Options{Seed: 7, Kinds: []Kind{k}})
		if len(p.Planted) != 1 || p.Planted[0].Kind != k {
			t.Fatalf("Kinds=[%s]: planted %+v", k, p.Planted)
		}
		if ClassOf(k) == hls.ClassNone {
			t.Fatalf("ClassOf(%s) unmapped", k)
		}
		if p.Planted[0].Class != ClassOf(k) {
			t.Fatalf("kind %s: class %v, ClassOf says %v", k, p.Planted[0].Class, ClassOf(k))
		}
	}
}

// Present must reject a violation record whose construct is absent: a
// clean program contains none of the planted kinds.
func TestPresentNegative(t *testing.T) {
	dirty := MustGenerate(Options{Seed: 3})
	clean := MustGenerate(Options{Seed: 3, Clean: true})
	for _, v := range dirty.Planted {
		if Present(clean.Unit, v) {
			t.Errorf("Present(%s) true on the clean twin", v.Kind)
		}
	}
}
