package progen

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls/check"
)

// keepReparses wraps a predicate so it only accepts programs whose
// printed form re-parses — the invariant the conformance harness
// demands of every committed reproducer.
func keepReparses(pred func(*cast.Unit) bool) func(*cast.Unit) bool {
	return func(u *cast.Unit) bool {
		ru, err := cparser.Parse(cast.Print(u))
		return err == nil && pred(ru)
	}
}

// Reduce must preserve the predicate and shrink hard: on generated
// programs with a planted violation, the minimized program still
// exhibits the violation and is at most 25% of the original AST node
// count (the acceptance bound for conformance reproducers).
func TestReducePreservesPredicateAndShrinks(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := MustGenerate(Options{Seed: seed})
		v := p.Planted[0]
		keep := keepReparses(func(u *cast.Unit) bool {
			return Present(u, v) && check.Run(u, cfg()).HasClass(v.Class)
		})
		red := Reduce(p.Unit, keep, ReduceOptions{})
		if !keep(red) {
			t.Fatalf("seed %d: reduced program no longer satisfies the predicate", seed)
		}
		orig, got := cast.CountNodes(p.Unit), cast.CountNodes(red)
		if got*4 > orig {
			t.Errorf("seed %d (%s): reduced to %d of %d nodes, want <= 25%%", seed, v.Kind, got, orig)
		}
	}
}

// The reducer must not mutate its input.
func TestReduceLeavesInputIntact(t *testing.T) {
	p := MustGenerate(Options{Seed: 4})
	before := cast.Print(p.Unit)
	Reduce(p.Unit, keepReparses(func(u *cast.Unit) bool {
		return check.Run(u, cfg()).HasClass(p.Planted[0].Class)
	}), ReduceOptions{})
	if after := cast.Print(p.Unit); after != before {
		t.Fatal("Reduce mutated its input unit")
	}
}

// Same input, same predicate => byte-identical output, on every run.
func TestReduceDeterministic(t *testing.T) {
	p := MustGenerate(Options{Seed: 9})
	v := p.Planted[0]
	keep := keepReparses(func(u *cast.Unit) bool { return Present(u, v) })
	a := cast.Print(Reduce(p.Unit, keep, ReduceOptions{}))
	b := cast.Print(Reduce(p.Unit, keep, ReduceOptions{}))
	if a != b {
		t.Fatalf("nondeterministic reduction:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// A predicate the input does not satisfy returns the input unchanged
// (as a fresh clone).
func TestReduceRejectedInput(t *testing.T) {
	p := MustGenerate(Options{Seed: 2, Clean: true})
	red := Reduce(p.Unit, func(u *cast.Unit) bool { return false }, ReduceOptions{})
	if cast.Print(red) != cast.Print(p.Unit) {
		t.Fatal("rejected input was not returned unchanged")
	}
	if red == p.Unit {
		t.Fatal("Reduce returned the input unit itself, not a clone")
	}
}

// The trial budget is a hard cap: a tiny budget still terminates and
// still satisfies the predicate.
func TestReduceTrialBudget(t *testing.T) {
	p := MustGenerate(Options{Seed: 5})
	calls := 0
	keep := func(u *cast.Unit) bool {
		calls++
		return strings.Contains(cast.Print(u), "kernel")
	}
	red := Reduce(p.Unit, keep, ReduceOptions{MaxTrials: 10})
	if calls > 11 { // initial acceptance check + MaxTrials
		t.Fatalf("predicate called %d times, budget was 10", calls)
	}
	if !strings.Contains(cast.Print(red), "kernel") {
		t.Fatal("budget-capped reduction broke the predicate")
	}
}

// Statement-chunk removal, control-flow unwrapping, and expression
// simplification compose: a predicate tied to a single deep construct
// reduces to a near-minimal program.
func TestReduceDeepConstruct(t *testing.T) {
	src := `
int kernel(int a[16], int s, int out[16]) {
	int acc = 0;
	for (int i = 0; i < 16; i++) {
		if (a[i] > 4) {
			acc = acc + (a[i] * 3 + s);
		} else {
			acc = acc - 1;
		}
	}
	while (s > 0) {
		int vbuf[s];
		vbuf[0] = acc;
		acc = acc + vbuf[0];
		s = s - 1;
	}
	for (int o = 0; o < 16; o++) {
		out[o] = acc;
	}
	return acc;
}
`
	u, err := cparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	hasVLA := keepReparses(func(u *cast.Unit) bool {
		return Present(u, Violation{Kind: KindVLA})
	})
	red := Reduce(u, hasVLA, ReduceOptions{})
	if !hasVLA(red) {
		t.Fatal("reduced program lost the VLA")
	}
	orig, got := cast.CountNodes(u), cast.CountNodes(red)
	if got*4 > orig {
		t.Errorf("reduced to %d of %d nodes, want <= 25%%", got, orig)
	}
	s := cast.Print(red)
	if strings.Contains(s, "else") || strings.Contains(s, "* 3") {
		t.Errorf("irrelevant constructs survived:\n%s", s)
	}
}
