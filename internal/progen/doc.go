// Package progen is a deterministic, seeded random-program generator
// for the C subset the pipeline supports (functions, structs, pointers,
// arrays, counted and data-dependent loops, malloc/free, recursion). It
// emits kernels together with an oracle record of the HLS violations it
// planted — the Table 1 error classes: recursion and dynamic allocation
// (dynamic data), unknown-bound arrays, pointer aliases and long-double
// locals (unsupported types), and misplaced top/loop pragmas.
//
// Every planted violation is shaped so that (a) the synthesizability
// checker must flag its class and (b) an existing repair template can
// fix it — so a conformance run can assert both "the checker sees what
// we planted" and "the repair search converges" (see internal/conform).
//
// Generation is a pure function of Options: the same seed produces
// byte-identical source and the same oracle on every run.
package progen
