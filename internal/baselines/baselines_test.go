package baselines

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/subjects"
)

func TestHeteroRefactorSucceedsOnDynamicDataSubjects(t *testing.T) {
	for _, id := range []string{"P3", "P8"} {
		s, err := subjects.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res := HeteroRefactor(s.MustParse(), s.Kernel, s.ExistingTestsOrNil())
		if !res.Compatible || !res.BehaviorOK {
			t.Errorf("%s: HR should succeed (dynamic-data subject): remaining %v, log %v",
				id, res.Remaining, res.Stats.EditLog)
		}
	}
}

func TestHeteroRefactorFailsOutsideItsScope(t *testing.T) {
	// P1's error is an unsupported type; HR's class filter cannot touch it.
	s, err := subjects.ByID("P1")
	if err != nil {
		t.Fatal(err)
	}
	res := HeteroRefactor(s.MustParse(), s.Kernel, nil)
	if res.Compatible {
		t.Errorf("HR must not fix a type error; log %v", res.Stats.EditLog)
	}
	// And the remaining diagnostic is the type error.
	foundType := false
	for _, d := range res.Remaining {
		if d.Class == hls.ClassUnsupportedType {
			foundType = true
		}
	}
	if !foundType {
		t.Errorf("type diagnostic should remain: %v", res.Remaining)
	}
}

func TestHeteroRefactorAppliesNoForeignEdits(t *testing.T) {
	s, err := subjects.ByID("P5") // dynamic data + type error
	if err != nil {
		t.Fatal(err)
	}
	res := HeteroRefactor(s.MustParse(), s.Kernel, s.ExistingTestsOrNil())
	if res.Compatible {
		t.Error("P5 carries a type error HR cannot fix")
	}
	for _, e := range res.Stats.EditLog {
		if strings.Contains(e, "type_trans") || strings.Contains(e, "explore") ||
			strings.Contains(e, "constructor") {
			t.Errorf("HR applied an out-of-scope edit: %s", e)
		}
	}
}

func TestAblationOptionShapes(t *testing.T) {
	wc := WithoutCheckerOptions()
	if wc.UseStyleChecker {
		t.Error("WithoutChecker must disable the style checker")
	}
	if !wc.UseDependence {
		t.Error("WithoutChecker keeps dependence guidance")
	}
	wd := WithoutDependenceOptions()
	if wd.UseDependence {
		t.Error("WithoutDependence must disable dependence guidance")
	}
	if !wd.UseStyleChecker {
		t.Error("WithoutDependence keeps the style checker (per the paper)")
	}
	if wd.Budget != 12*3600 {
		t.Errorf("WithoutDependence budget %v, want 12h", wd.Budget)
	}
	hr := HeteroRefactorOptions()
	if hr.PerfExploration {
		t.Error("HR performs no performance edits")
	}
	if !hr.ClassFilter[hls.ClassDynamicData] || len(hr.ClassFilter) != 1 {
		t.Errorf("HR scope must be dynamic data only: %v", hr.ClassFilter)
	}
}
