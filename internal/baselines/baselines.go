// Package baselines implements the three comparison systems of §6.3/§6.4:
//
//   - HeteroRefactor: the prior-work transpiler whose scope is limited to
//     dynamic data structures (recursion, malloc/free, pointers) and which
//     generates no tests of its own — it validates only against whatever
//     tests the subject ships with.
//   - WithoutChecker: HeteroGen with the lightweight style checker
//     disabled, paying a full HLS compilation for every candidate.
//   - WithoutDependence: HeteroGen choosing candidate edits in a random
//     order with no dependence structure.
package baselines

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/repair"
)

// HeteroRefactorOptions returns the repair configuration modelling the
// HeteroRefactor baseline: dynamic-data templates only, no performance
// exploration, standard budget.
func HeteroRefactorOptions() repair.Options {
	o := repair.DefaultOptions()
	o.PerfExploration = false
	o.ClassFilter = map[hls.ErrorClass]bool{hls.ClassDynamicData: true}
	return o
}

// WithoutCheckerOptions disables the style checker (every candidate pays
// a full compile).
func WithoutCheckerOptions() repair.Options {
	o := repair.DefaultOptions()
	o.UseStyleChecker = false
	return o
}

// WithoutDependenceOptions disables dependence-guided enumeration and
// extends the budget to the paper's twelve-hour failure threshold.
func WithoutDependenceOptions() repair.Options {
	o := repair.DefaultOptions()
	o.UseDependence = false
	o.Budget = 12 * 3600
	o.MaxIterations = 512
	return o
}

// HeteroRefactor runs the HR baseline: repair limited to dynamic-data
// edits, validated only against the provided (pre-existing) tests.
// Success mirrors Table 5: the output must compile error-free and agree
// on the supplied tests.
func HeteroRefactor(original *cast.Unit, kernel string, existingTests []fuzz.TestCase) repair.Result {
	initial := cast.CloneUnit(original)
	return repair.Search(original, initial, kernel, existingTests, HeteroRefactorOptions())
}
