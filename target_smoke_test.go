package heterogen_test

// The target-smoke gate (`make target-smoke`, TARGET_SMOKE=1): build
// the real heterogen and hgserve binaries and run one subject against
// every shipped backend/device profile — each profile alone through
// the heterogen CLI, the full profile set at once as a multi-target
// Pareto repair, and a multi-target job over hgserve's HTTP API
// (including the 400 contract for unknown target specs). This is the
// only test that exercises target selection as an operator would:
// through flags, the request's targets field, and the printed
// artifacts.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/hls"
)

func TestTargetSmoke(t *testing.T) {
	if os.Getenv("TARGET_SMOKE") == "" {
		t.Skip("set TARGET_SMOKE=1 (make target-smoke) to run")
	}

	dir := t.TempDir()
	hgBin := filepath.Join(dir, "heterogen")
	serveBin := filepath.Join(dir, "hgserve")
	for bin, pkg := range map[string]string{hgBin: "./cmd/heterogen", serveBin: "./cmd/hgserve"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("go build %s: %v", pkg, err)
		}
	}

	subject := filepath.Join(dir, "subject.c")
	if err := os.WriteFile(subject, []byte(overlapKernel), 0o644); err != nil {
		t.Fatal(err)
	}

	// Every shipped profile, one at a time, through the real CLI.
	all := hls.AllTargets()
	if len(all) < 3 {
		t.Fatalf("AllTargets() = %v, want at least 3 shipped profiles", all)
	}
	for _, target := range all {
		cmd := exec.Command(hgBin, "-kernel", "kernel", "-quick",
			"-target", target.String(), "-out", filepath.Join(dir, "out.c"), subject)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("heterogen -target %s: %v\n%s", target, err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "target "+target.String()+":") {
			t.Errorf("-target %s: missing per-target verdict line in stderr:\n%s", target, stderr.String())
		}
	}

	// The full set at once: a multi-target Pareto repair with a
	// per-device verdict table in the Markdown report.
	report := filepath.Join(dir, "report.md")
	args := []string{"-kernel", "kernel", "-quick", "-report", report, "-out", filepath.Join(dir, "out.c")}
	for _, target := range all {
		args = append(args, "-target", target.String())
	}
	args = append(args, subject)
	cmd := exec.Command(hgBin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("heterogen multi-target: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pareto set:") {
		t.Errorf("multi-target run: no pareto summary on stderr:\n%s", stderr.String())
	}
	md, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Per-device verdicts", "### Pareto set"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("report missing %q section", want)
		}
	}

	// An unknown target is a CLI usage error, not a silent default.
	cmd = exec.Command(hgBin, "-kernel", "kernel", "-device", "nope", subject)
	if err := cmd.Run(); err == nil {
		t.Error("heterogen -device nope succeeded, want failure")
	}

	// The same set over the service API.
	targetSpecs, err := json.Marshal([]string{all[0].String(), all[1].String()})
	if err != nil {
		t.Fatal(err)
	}
	serve := exec.Command(serveBin, "-addr", "127.0.0.1:0",
		"-cache-dir", filepath.Join(dir, "cache"))
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatalf("start hgserve: %v", err)
	}
	t.Cleanup(func() {
		_ = serve.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = serve.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			_ = serve.Process.Kill()
			<-done
		}
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading startup line: %v", err)
	}
	base, ok := strings.CutPrefix(strings.TrimSpace(line), "hgserve: listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout)
	client := &http.Client{Timeout: 30 * time.Second}

	// Unknown target spec: rejected with 400 at submission.
	badBody := fmt.Sprintf(`{"kind":"repair","kernel":"kernel","source":%q,
		"targets":["sdaccel:pluto"],"budget":{"max_iterations":8}}`, overlapKernel)
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(badBody))
	if err != nil {
		t.Fatalf("submit bad target: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown target submit = %d, want 400", resp.StatusCode)
	}

	body := fmt.Sprintf(`{"kind":"repair","kernel":"kernel","source":%q,
		"targets":%s,"budget":{"fuzz_execs":150,"max_iterations":16}}`, overlapKernel, targetSpecs)
	resp, err = client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID      string   `json:"id"`
		State   string   `json:"state"`
		Targets []string `json:"targets"`
		Result  *struct {
			Repair *struct {
				PerTarget []struct {
					Target string `json:"target"`
				} `json:"per_target"`
			} `json:"repair"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit = %d %+v, want 202 with id", resp.StatusCode, st)
	}
	if len(st.Targets) != 2 {
		t.Errorf("job status targets = %v, want the 2 canonical specs", st.Targets)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job %s ended %s", st.ID, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 2m", st.ID, st.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.Result == nil || st.Result.Repair == nil || len(st.Result.Repair.PerTarget) != 2 {
		t.Fatalf("terminal job missing per-target verdicts: %+v", st.Result)
	}
	for i, v := range st.Result.Repair.PerTarget {
		if v.Target != st.Targets[i] {
			t.Errorf("per_target[%d] = %q, want %q", i, v.Target, st.Targets[i])
		}
	}

	// Targeted jobs stamp every NDJSON event with the target set.
	resp, err = client.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantStamp := fmt.Sprintf(`"target":"%s+%s"`, st.Targets[0], st.Targets[1])
	if !bytes.Contains(events, []byte(wantStamp)) {
		t.Errorf("NDJSON events missing target stamp %s", wantStamp)
	}
}
