# Build, test, and benchmark targets. `make check` is the pre-merge
# gate documented in CONTRIBUTING.md.

GO ?= go

.PHONY: all build test race vet bench bench-parallel bench-cache bench-obs bench-repair check trace-demo conform-smoke chaos-smoke serve-smoke crash-smoke obs-smoke target-smoke interp-diff-smoke docs-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The worker pools (internal/repair/parallel.go, internal/fuzz/parallel.go)
# and the evaluation cache they share are the only concurrency in the
# module; this is their data-race proof. -short trims the determinism
# suites to a few subjects — race coverage comes from the code paths,
# not subject breadth, and the full-breadth suites exceed the test
# binary's default timeout under the race detector's ~10x slowdown.
race:
	$(GO) test -race -short ./internal/repair/... ./internal/fuzz/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerates bench_parallel.json, the committed record of the
# toolchain-overlap speedup (fails below 2x).
bench-parallel:
	WRITE_BENCH=1 $(GO) test -run TestWriteParallelBenchReport -v .

# Regenerates bench_cache.json, the committed record of the evaluation
# cache's cold-vs-warm speedup (fails below 2x or on a zero warm hit
# rate).
bench-cache:
	WRITE_BENCH=1 $(GO) test -run TestWriteCacheBenchReport -v .

# Regenerates bench_obs.json, the committed record of the tracing
# overhead: the Figure 2 repair search with the full hgserve
# observability sink (JSONL trace writer + metrics registry) vs no
# observer at all, pure compute. Fails at 5% overhead or above.
bench-obs:
	WRITE_BENCH=1 $(GO) test -run TestWriteObsBenchReport -v .

# Regenerates the candidate_throughput section of bench_parallel.json:
# the fast evaluation path (structure-sharing clones, compiled code,
# cached references, report memoization) vs the per-candidate
# clone-and-tree-walk pipeline on the Figure 2 subject. Fails below 10x
# or on any report divergence between the two paths.
bench-repair:
	WRITE_BENCH=1 $(GO) test -run TestWriteRepairBenchReport -v .

# Full differential belt for the compiled fast path: the 2000-seed
# VM-vs-tree sweep (clean and fault-injected progen programs, CPU and
# FPGA modes, tight step budgets) plus the shared-Codebase race test.
# `make check` runs the same belt at its 200-seed default.
interp-diff-smoke:
	INTERP_DIFF=1 $(GO) test -run 'TestDiffVMAgainstTree|TestDiffEqualVerdicts' -v ./internal/interp/
	$(GO) test -race -run TestCodebaseSharedConcurrently ./internal/interp/

# Fixed-seed conformance smoke: 100 generated kernels with planted HLS
# violations through the full pipeline (checker oracle, repair
# convergence, differential test, sampled cache/trace parity), plus the
# -short conformance unit suites. Deterministic — same seeds every run.
conform-smoke:
	$(GO) run ./cmd/hgconform -seed 1 -n 100
	$(GO) test -short ./internal/progen/... ./internal/conform/...

# Chaos smoke: the deterministic fault-injection matrix (every guarded
# stage crossed with every failure class) plus the guard unit suite,
# under the race detector — the proof that no stage panic, hang, or
# corrupt output escapes containment and that fault-free guarded runs
# stay byte-identical. -short trims the subject-parity sweep to three
# subjects; the matrix itself always runs in full.
chaos-smoke:
	$(GO) test -race -short ./internal/guard/... ./internal/chaos/...

# Service smoke: build the real hgserve binary, start it on a free
# port, run one job of every kind over HTTP, and assert the /metrics
# and /healthz contracts. The only test that exercises the daemon as a
# process (startup line, flags, signal shutdown); the API behaviour
# itself is covered by internal/serve's httptest suite.
serve-smoke:
	SERVE_SMOKE=1 $(GO) test -run TestServeSmoke -v ./cmd/hgserve

# Crash smoke: the durability kill matrix. Builds the real hgserve
# binary, SIGKILLs it at injected crash points (mid-journal-append,
# mid-checkpoint-append, mid-cache-write, mid-drain, plus a hard kill
# after a terminal job), restarts it on the same -state-dir, and
# asserts the recovery invariants: the journal always reloads, every
# 202-acknowledged job is findable, and an interrupted repair resumes
# to a result and event trace byte-identical to an undisturbed control
# run. The test harness itself runs under the race detector.
crash-smoke:
	CRASH_SMOKE=1 $(GO) test -race -run TestCrashSmoke -v ./cmd/hgserve

# Observability smoke: run a small traced hgconform sweep, ingest the
# retained traces with the real hgstat binary in two different orders,
# and assert the fleet report, the JSON aggregate, and the priors
# artifact are byte-identical — the end-to-end determinism contract of
# the trace warehouse. Also exercises -verify and the -span view.
obs-smoke:
	OBS_SMOKE=1 $(GO) test -run TestObsSmoke -v ./cmd/hgstat

# Target smoke: build the real heterogen and hgserve binaries and run
# one subject against every shipped backend/device profile — each
# profile alone, the full set as a multi-target Pareto repair with its
# per-device report, and a multi-target job over hgserve's HTTP API
# (including the 400 contract for unknown target specs).
target-smoke:
	TARGET_SMOKE=1 $(GO) test -run TestTargetSmoke -v .

# Docs gate: every flag registered by any cmd/ binary (including the
# shared chaos.Flags vocabulary) must appear in the README's
# consolidated CLI reference table.
docs-check:
	$(GO) test -run TestDocsFlagReference -v .

# Traces one evaluation subject end-to-end and cross-validates the trace
# with hgtrace -check: the event stream must reproduce the run's
# reported attempts, edit chain, and virtual clock exactly.
TRACE_DEMO := $(or $(TMPDIR),/tmp)/heterogen-trace-demo.jsonl
trace-demo:
	$(GO) run ./cmd/hgeval -quick -subject P2 -table3 -workers 4 -trace $(TRACE_DEMO)
	$(GO) run ./cmd/hgtrace -check $(TRACE_DEMO)

check: build vet test race
