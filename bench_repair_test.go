// Candidate-throughput benchmark for the fast evaluation path: the
// three PR-9 layers (structure-sharing candidate construction,
// fingerprint-keyed compiled code and report memoization, reference
// caching) against the pre-existing pipeline (full clone per candidate,
// tree-walking differential run with per-candidate CPU references).
//
// The workload mirrors the random-mode search on the paper's Figure 2
// working example: the same candidate set is materialized and evaluated
// round after round, exactly like search iterations re-instantiating
// the template registry against the current program. Reports from both
// paths are asserted identical before any number is written.
package heterogen_test

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/repair"
)

// benchFile is the committed benchmark record; sections are merged so
// regenerating one leaves the others untouched.
const benchFile = "bench_parallel.json"

func readBenchSections(t *testing.T) map[string]json.RawMessage {
	t.Helper()
	sections := map[string]json.RawMessage{}
	data, err := os.ReadFile(benchFile)
	if os.IsNotExist(err) {
		return sections
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sections); err != nil {
		t.Fatal(err)
	}
	return sections
}

func writeBenchSections(t *testing.T, sections map[string]json.RawMessage) {
	t.Helper()
	data, err := json.MarshalIndent(sections, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRepairBenchReport regenerates the candidate_throughput
// section of bench_parallel.json. Guarded by an env var so normal test
// runs stay fast:
//
//	WRITE_BENCH=1 go test -run TestWriteRepairBenchReport -v
func TestWriteRepairBenchReport(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to regenerate the candidate_throughput section")
	}
	orig, tests := overlapInputs()
	kernel := "kernel"
	cfg := hls.DefaultConfig(kernel)

	// The candidate set of one random-mode iteration: every template
	// instantiated over the whole edit space, deterministically.
	st := repair.NewState()
	cands := append(repair.RandomCandidates(orig, nil, st), repair.PerfCandidates(orig, st)...)
	if len(cands) == 0 {
		t.Fatal("no candidates for the Figure 2 subject")
	}

	materialize := func(c repair.Candidate, fastClone bool) *cast.Unit {
		var clone *cast.Unit
		if fastClone && len(c.Edits) == 1 && len(c.Edits[0].Scope) > 0 {
			clone = cast.CloneUnitScoped(orig, c.Edits[0].Scope)
		} else {
			clone = cast.CloneUnit(orig)
		}
		for _, e := range c.Edits {
			if err := e.Apply(clone); err != nil {
				t.Fatalf("edit %v failed to re-apply: %v", e, err)
			}
		}
		return clone
	}

	const rounds = 100

	// Parity first: both paths must report identical verdicts for every
	// candidate before any throughput number means anything.
	code := interp.NewCodebase()
	fps := cast.NewFingerprints()
	runner := difftest.NewRunner(orig, kernel, cfg, tests, code, fps)
	for _, c := range cands {
		slowRep := difftest.Run(orig, materialize(c, false), kernel, cfg, tests)
		fastRep := runner.Run(materialize(c, true))
		if !reflect.DeepEqual(slowRep, fastRep) {
			t.Fatalf("report diverges for %v:\n  slow: %+v\n  fast: %+v", c.Edits, slowRep, fastRep)
		}
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, c := range cands {
			cu := materialize(c, false)
			difftest.Run(orig, cu, kernel, cfg, tests)
		}
	}
	slowWall := time.Since(start)

	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, c := range cands {
			cu := materialize(c, true)
			runner.Run(cu)
		}
	}
	fastWall := time.Since(start)

	n := rounds * len(cands)
	slowRate := float64(n) / slowWall.Seconds()
	fastRate := float64(n) / fastWall.Seconds()
	speedup := fastRate / slowRate

	section := map[string]any{
		"note": "Candidate construction + differential evaluation over the " +
			"paper's Figure 2 working example, cycling one random-mode " +
			"iteration's candidate set for many rounds, exactly as the search " +
			"revisits it. Slow path: full clone per candidate, tree-walking " +
			"differential run recomputing CPU references every time. Fast " +
			"path: structure-sharing clones, cached references, " +
			"fingerprint-keyed compiled code, and report memoization. Both " +
			"paths produce identical reports for every candidate (asserted " +
			"before timing).",
		"subject":           "figure2-tree",
		"candidates":        len(cands),
		"rounds":            rounds,
		"tests":             len(tests),
		"slow_cand_per_sec": slowRate,
		"fast_cand_per_sec": fastRate,
		"speedup":           speedup,
		"reports_identical": true,
		"compiled_funcs":    code.Size(),
		"compiled_reuses":   code.Reuses(),
	}
	raw, err := json.Marshal(section)
	if err != nil {
		t.Fatal(err)
	}
	sections := readBenchSections(t)
	sections["candidate_throughput"] = raw
	writeBenchSections(t, sections)

	t.Logf("candidate throughput: slow %.0f/s, fast %.0f/s, speedup %.1fx over %d candidates x %d rounds",
		slowRate, fastRate, speedup, len(cands), rounds)
	if speedup < 10 {
		t.Errorf("speedup %.2fx below the 10x target", speedup)
	}
}

// TestRepairBenchRecordCommitted pins the committed record: the
// candidate_throughput section must exist and document the >=10x
// speedup, so a regression in the fast path shows up as a stale or
// failing record rather than silently shifted numbers.
func TestRepairBenchRecordCommitted(t *testing.T) {
	sections := readBenchSections(t)
	raw, ok := sections["candidate_throughput"]
	if !ok {
		t.Fatal("bench_parallel.json has no candidate_throughput section; run `make bench-repair`")
	}
	var rec struct {
		Speedup          float64 `json:"speedup"`
		ReportsIdentical bool    `json:"reports_identical"`
		Candidates       int     `json:"candidates"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Speedup < 10 {
		t.Errorf("committed candidate throughput speedup %.2fx is below the 10x contract", rec.Speedup)
	}
	if !rec.ReportsIdentical {
		t.Error("committed record does not assert report parity")
	}
	if rec.Candidates == 0 {
		t.Error("committed record has no candidates")
	}
}
